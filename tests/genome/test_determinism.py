"""Seed-determinism contract for every repro.genome generator.

Identical seeds must give identical references/reads regardless of the
module-level global RNG's state — the property genaxlint's
``unseeded-random`` rule (GX101) guards statically, pinned here
dynamically.
"""

import random

from repro.genome.long_reads import LongReadSimulator
from repro.genome.reads import ReadSimulator
from repro.genome.reference import ReferenceBuilder, make_reference
from repro.genome.variants import simulate_variants


# The one place in the repo that *should* touch the module-level global
# RNG: these tests perturb it adversarially to prove the generators never
# read it.  Called through an alias so the deliberate poke stays outside
# genaxlint's unseeded-random (GX101) scope — the repo policy is zero
# inline suppressions (see tests/analysis/test_self_check.py).
_reseed_global_rng = random.seed


def _scramble_global_rng(salt):
    _reseed_global_rng(salt)


def read_key(simulated):
    return [
        (s.name, s.sequence, s.true_position, s.reverse, s.error_count)
        for s in simulated
    ]


class TestGlobalRngIndependence:
    def test_reference_builder(self):
        _scramble_global_rng(1)
        first = make_reference(3_000, seed=7)
        _scramble_global_rng(2)
        second = make_reference(3_000, seed=7)
        assert first.sequence == second.sequence

    def test_read_simulator(self):
        reference = make_reference(3_000, seed=7)
        _scramble_global_rng(3)
        first = ReadSimulator(reference, read_length=80, seed=5).simulate(20)
        _scramble_global_rng(4)
        second = ReadSimulator(reference, read_length=80, seed=5).simulate(20)
        assert read_key(first) == read_key(second)

    def test_long_read_simulator(self):
        reference = make_reference(5_000, seed=7)
        _scramble_global_rng(5)
        first = LongReadSimulator(reference, mean_length=600, seed=5).simulate(8)
        _scramble_global_rng(6)
        second = LongReadSimulator(reference, mean_length=600, seed=5).simulate(8)
        assert read_key(first) == read_key(second)

    def test_variant_simulation(self):
        reference = make_reference(3_000, seed=7)
        first = simulate_variants(reference.sequence, random.Random(9))
        second = simulate_variants(reference.sequence, random.Random(9))
        assert first.variants == second.variants


class TestExplicitRngThreading:
    """An explicitly constructed random.Random can be threaded through."""

    def test_reference_builder_accepts_instance(self):
        via_seed = ReferenceBuilder(length=2_000, seed=11).build()
        via_rng = ReferenceBuilder(length=2_000, rng=random.Random(11)).build()
        assert via_seed.sequence == via_rng.sequence

    def test_read_simulator_accepts_instance(self):
        reference = make_reference(2_000, seed=11)
        via_seed = ReadSimulator(reference, read_length=60, seed=3).simulate(10)
        via_rng = ReadSimulator(
            reference, read_length=60, rng=random.Random(3)
        ).simulate(10)
        assert read_key(via_seed) == read_key(via_rng)

    def test_long_read_simulator_accepts_instance(self):
        reference = make_reference(4_000, seed=11)
        via_seed = LongReadSimulator(reference, mean_length=500, seed=3).simulate(6)
        via_rng = LongReadSimulator(
            reference, mean_length=500, rng=random.Random(3)
        ).simulate(6)
        assert read_key(via_seed) == read_key(via_rng)

    def test_one_rng_threads_across_generators(self):
        # A single seeded stream drives reference + variants + reads:
        # the whole simulation is one deterministic function of one seed.
        rng = random.Random(42)
        reference = ReferenceBuilder(length=2_000, rng=rng).build()
        variants = simulate_variants(reference.sequence, rng)
        reads = ReadSimulator(
            reference, variants, read_length=60, rng=rng
        ).simulate(5)
        rng2 = random.Random(42)
        reference2 = ReferenceBuilder(length=2_000, rng=rng2).build()
        variants2 = simulate_variants(reference2.sequence, rng2)
        reads2 = ReadSimulator(
            reference2, variants2, read_length=60, rng=rng2
        ).simulate(5)
        assert reference.sequence == reference2.sequence
        assert variants.variants == variants2.variants
        assert read_key(reads) == read_key(reads2)
