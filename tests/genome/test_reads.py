"""Tests for repro.genome.reads."""

import random

import pytest

from repro.genome.reads import ErrorProfile, Read, ReadSimulator
from repro.genome.reference import make_reference
from repro.genome.sequence import is_dna, reverse_complement
from repro.genome.variants import simulate_variants


class TestRead:
    def test_len(self):
        assert len(Read("r", "ACGT")) == 4

    def test_quality_length_checked(self):
        with pytest.raises(ValueError):
            Read("r", "ACGT", "II")

    def test_quality_optional(self):
        assert Read("r", "ACGT").quality == ""


class TestErrorProfile:
    def test_ramps_toward_three_prime_end(self):
        profile = ErrorProfile(rate_start=0.01, rate_end=0.05)
        assert profile.error_probability(0, 100) == pytest.approx(0.01)
        assert profile.error_probability(99, 100) == pytest.approx(0.05)

    def test_monotone(self):
        profile = ErrorProfile()
        probs = [profile.error_probability(i, 101) for i in range(101)]
        assert probs == sorted(probs)

    def test_mean(self):
        profile = ErrorProfile(rate_start=0.01, rate_end=0.03)
        assert profile.mean_rate(101) == pytest.approx(0.02)


class TestReadSimulator:
    @pytest.fixture(scope="class")
    def reference(self):
        return make_reference(10_000, seed=17)

    def test_read_length(self, reference):
        sim = ReadSimulator(reference, read_length=101, seed=1)
        for read in sim.simulate(20):
            assert len(read.sequence) == 101

    def test_reads_are_dna(self, reference):
        sim = ReadSimulator(reference, read_length=80, seed=2)
        assert all(is_dna(r.sequence) for r in sim.simulate(20))

    def test_deterministic(self, reference):
        a = ReadSimulator(reference, read_length=50, seed=3).simulate(10)
        b = ReadSimulator(reference, read_length=50, seed=3).simulate(10)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_error_free_forward_reads_match_reference(self, reference):
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(
            reference, read_length=60, seed=4, error_profile=profile, both_strands=False
        )
        for read in sim.simulate(15):
            start = read.true_position
            assert reference.sequence[start : start + 60] == read.sequence
            assert read.error_count == 0

    def test_reverse_reads_match_reverse_strand(self, reference):
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(reference, read_length=60, seed=5, error_profile=profile)
        reverse_reads = [r for r in sim.simulate(40) if r.reverse]
        assert reverse_reads, "expected some reverse-strand reads"
        for read in reverse_reads:
            start = read.true_position
            fragment = reference.sequence[start : start + 60]
            assert reverse_complement(fragment) == read.sequence

    def test_error_rate_in_expected_range(self, reference):
        profile = ErrorProfile(rate_start=0.02, rate_end=0.02, indel_fraction=0.0)
        sim = ReadSimulator(reference, read_length=101, seed=6, error_profile=profile)
        reads = sim.simulate(200)
        total_errors = sum(r.error_count for r in reads)
        expected = 0.02 * 101 * 200
        assert 0.6 * expected < total_errors < 1.4 * expected

    def test_coverage_read_count(self, reference):
        sim = ReadSimulator(reference, read_length=100, seed=7)
        reads = sim.simulate_coverage(5.0)
        assert len(reads) == 5 * len(reference) // 100

    def test_quality_string_present(self, reference):
        sim = ReadSimulator(reference, read_length=50, seed=8)
        read = sim.simulate(1)[0]
        assert len(read.read.quality) == 50

    def test_with_variants_positions_still_reasonable(self, reference):
        rng = random.Random(31)
        variants = simulate_variants(reference.sequence, rng, snp_rate=0.002)
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(
            reference, variants, read_length=80, seed=9, error_profile=profile,
            both_strands=False,
        )
        for read in sim.simulate(20):
            window = reference.sequence[read.true_position : read.true_position + 80]
            # Reads may differ from the reference only through variants.
            mismatches = sum(1 for a, b in zip(window, read.sequence) if a != b)
            assert mismatches <= read.variant_edits + 5

    def test_read_longer_than_genome_rejected(self):
        tiny = make_reference(50, seed=1)
        with pytest.raises(ValueError):
            ReadSimulator(tiny, read_length=101, seed=0)


class TestInjectErrorsIndelQuality:
    """Regression: indel errors must keep quality and bases in lockstep.

    The original ``_inject_errors`` only handled substitutions, so an
    insertion produced a read whose quality string was one character
    short and ``Read.__post_init__`` rejected it.
    """

    @pytest.fixture(scope="class")
    def indel_profile(self):
        return ErrorProfile(rate_start=0.2, rate_end=0.2, indel_fraction=1.0)

    def test_natural_length_drifts_with_indels(self, indel_profile):
        from repro.genome.reads import inject_errors
        from repro.genome.sequence import random_dna

        rng = random.Random(3)
        fragment = random_dna(400, rng)
        bases, quality, errors = inject_errors(fragment, indel_profile, rng)
        assert len(quality) == len(bases)
        assert errors > 0
        # At 20% pure-indel error the length moves off 400 (seeded draw).
        assert len(bases) != len(fragment)

    def test_fixed_length_trims_and_pads(self, indel_profile):
        from repro.genome.reads import inject_errors
        from repro.genome.sequence import random_dna

        rng = random.Random(4)
        fragment = random_dna(150, rng)
        bases, quality, _ = inject_errors(
            fragment, indel_profile, rng, fixed_length=150
        )
        assert len(bases) == 150
        assert len(quality) == 150

    def test_insertion_only_extends_both_strings(self):
        from repro.genome.reads import inject_errors

        # MAX_RATE caps the per-base probability at 0.5, so count the
        # errors that actually fired and check the length arithmetic.
        profile = ErrorProfile(
            rate_start=1.0, rate_end=1.0, indel_fraction=1.0, insertion_bias=1.0
        )
        rng = random.Random(5)
        fragment = "ACGTACGT" * 8
        bases, quality, errors = inject_errors(fragment, profile, rng)
        assert errors > 0
        assert len(bases) == len(quality) == len(fragment) + errors

    def test_deletion_only_shrinks_both_strings(self):
        from repro.genome.reads import inject_errors

        profile = ErrorProfile(
            rate_start=1.0, rate_end=1.0, indel_fraction=1.0, insertion_bias=0.0
        )
        rng = random.Random(6)
        fragment = "ACGTACGT" * 8
        bases, quality, errors = inject_errors(fragment, profile, rng)
        assert errors > 0
        assert len(bases) == len(quality) == len(fragment) - errors

    def test_simulator_emits_valid_reads_under_indel_errors(self, indel_profile):
        reference = make_reference(2_000, seed=19)
        simulator = ReadSimulator(
            reference, read_length=101, error_profile=indel_profile, seed=7
        )
        # Read.__post_init__ enforces the invariant; construction is the test.
        for read in simulator.simulate(30):
            assert len(read.read.quality) == len(read.sequence) == 101


class TestProfileRegistry:
    @pytest.fixture(scope="class")
    def reference(self):
        return make_reference(2_000, seed=53)

    def test_registered_names_in_order(self):
        from repro.genome.reads import profile_names

        assert profile_names() == ("illumina", "nanopore", "paired_end", "sv")

    def test_unknown_profile_lists_known(self):
        from repro.genome.reads import get_profile

        with pytest.raises(ValueError, match="unknown read profile.*illumina"):
            get_profile("pacbio")

    def test_duplicate_registration_rejected(self):
        from repro.genome.reads import get_profile, register_profile

        with pytest.raises(ValueError, match="already registered"):
            register_profile(get_profile("illumina"))

    def test_every_profile_builds_valid_reads(self, reference):
        from repro.genome.reads import build_profile_reads, profile_names

        for name in profile_names():
            reads = build_profile_reads(name, reference, 2, seed=5)
            expected = 4 if name == "paired_end" else 2
            assert len(reads) == expected, name
            for read in reads:
                assert is_dna(read.sequence), name
                assert len(read.read.quality) == len(read.sequence), name

    def test_profiles_are_deterministic(self, reference):
        from repro.genome.reads import build_profile_reads, profile_names

        for name in profile_names():
            first = build_profile_reads(name, reference, 2, seed=9)
            second = build_profile_reads(name, reference, 2, seed=9)
            assert [r.sequence for r in first] == [r.sequence for r in second]

    def test_render_table_covers_every_profile(self):
        from repro.genome.reads import profile_names, render_profile_table

        table = render_profile_table()
        for name in profile_names():
            assert f"| `{name}` |" in table
