"""Tests for repro.genome.reads."""

import random

import pytest

from repro.genome.reads import ErrorProfile, Read, ReadSimulator
from repro.genome.reference import make_reference
from repro.genome.sequence import is_dna, reverse_complement
from repro.genome.variants import simulate_variants


class TestRead:
    def test_len(self):
        assert len(Read("r", "ACGT")) == 4

    def test_quality_length_checked(self):
        with pytest.raises(ValueError):
            Read("r", "ACGT", "II")

    def test_quality_optional(self):
        assert Read("r", "ACGT").quality == ""


class TestErrorProfile:
    def test_ramps_toward_three_prime_end(self):
        profile = ErrorProfile(rate_start=0.01, rate_end=0.05)
        assert profile.error_probability(0, 100) == pytest.approx(0.01)
        assert profile.error_probability(99, 100) == pytest.approx(0.05)

    def test_monotone(self):
        profile = ErrorProfile()
        probs = [profile.error_probability(i, 101) for i in range(101)]
        assert probs == sorted(probs)

    def test_mean(self):
        profile = ErrorProfile(rate_start=0.01, rate_end=0.03)
        assert profile.mean_rate(101) == pytest.approx(0.02)


class TestReadSimulator:
    @pytest.fixture(scope="class")
    def reference(self):
        return make_reference(10_000, seed=17)

    def test_read_length(self, reference):
        sim = ReadSimulator(reference, read_length=101, seed=1)
        for read in sim.simulate(20):
            assert len(read.sequence) == 101

    def test_reads_are_dna(self, reference):
        sim = ReadSimulator(reference, read_length=80, seed=2)
        assert all(is_dna(r.sequence) for r in sim.simulate(20))

    def test_deterministic(self, reference):
        a = ReadSimulator(reference, read_length=50, seed=3).simulate(10)
        b = ReadSimulator(reference, read_length=50, seed=3).simulate(10)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_error_free_forward_reads_match_reference(self, reference):
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(
            reference, read_length=60, seed=4, error_profile=profile, both_strands=False
        )
        for read in sim.simulate(15):
            start = read.true_position
            assert reference.sequence[start : start + 60] == read.sequence
            assert read.error_count == 0

    def test_reverse_reads_match_reverse_strand(self, reference):
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(reference, read_length=60, seed=5, error_profile=profile)
        reverse_reads = [r for r in sim.simulate(40) if r.reverse]
        assert reverse_reads, "expected some reverse-strand reads"
        for read in reverse_reads:
            start = read.true_position
            fragment = reference.sequence[start : start + 60]
            assert reverse_complement(fragment) == read.sequence

    def test_error_rate_in_expected_range(self, reference):
        profile = ErrorProfile(rate_start=0.02, rate_end=0.02, indel_fraction=0.0)
        sim = ReadSimulator(reference, read_length=101, seed=6, error_profile=profile)
        reads = sim.simulate(200)
        total_errors = sum(r.error_count for r in reads)
        expected = 0.02 * 101 * 200
        assert 0.6 * expected < total_errors < 1.4 * expected

    def test_coverage_read_count(self, reference):
        sim = ReadSimulator(reference, read_length=100, seed=7)
        reads = sim.simulate_coverage(5.0)
        assert len(reads) == 5 * len(reference) // 100

    def test_quality_string_present(self, reference):
        sim = ReadSimulator(reference, read_length=50, seed=8)
        read = sim.simulate(1)[0]
        assert len(read.read.quality) == 50

    def test_with_variants_positions_still_reasonable(self, reference):
        rng = random.Random(31)
        variants = simulate_variants(reference.sequence, rng, snp_rate=0.002)
        profile = ErrorProfile(rate_start=0.0, rate_end=0.0)
        sim = ReadSimulator(
            reference, variants, read_length=80, seed=9, error_profile=profile,
            both_strands=False,
        )
        for read in sim.simulate(20):
            window = reference.sequence[read.true_position : read.true_position + 80]
            # Reads may differ from the reference only through variants.
            mismatches = sum(1 for a, b in zip(window, read.sequence) if a != b)
            assert mismatches <= read.variant_edits + 5

    def test_read_longer_than_genome_rejected(self):
        tiny = make_reference(50, seed=1)
        with pytest.raises(ValueError):
            ReadSimulator(tiny, read_length=101, seed=0)
