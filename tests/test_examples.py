"""Smoke tests: every example script must run to completion.

The heavyweight pipelines inside quickstart/variant_calling are already
exercised by the unit suite on the shared fixtures, so this module runs the
*fast* examples end-to-end and checks the slow ones are importable with a
callable ``main``.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES))


class TestFastExamples:
    def test_spell_correction_runs(self, capsys):
        module = importlib.import_module("spell_correction")
        module.main()
        out = capsys.readouterr().out
        assert "genome (1)" in out
        assert "zero rebuilds" in out

    def test_long_read_scaling_runs(self, capsys, monkeypatch):
        module = importlib.import_module("long_read_scaling")
        monkeypatch.setattr(module, "LENGTHS", [100, 200])
        module.main()
        out = capsys.readouterr().out
        assert "Takeaways" in out

    def test_nanopore_example_importable(self):
        module = importlib.import_module("nanopore_long_reads")
        assert callable(module.main)

    def test_quickstart_importable(self):
        module = importlib.import_module("quickstart")
        assert callable(module.main)

    def test_variant_calling_importable(self):
        module = importlib.import_module("variant_calling")
        assert callable(module.main)

    def test_paper_evaluation_runs(self, capsys):
        module = importlib.import_module("paper_evaluation")
        module.main()
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "reduction vs CPU: 12.0x" in out

    def test_variant_calling_pileup_unit(self):
        """The pileup caller itself, on a hand-built alignment."""
        from variant_calling import pileup_snp_calls

        from repro.align.cigar import Cigar
        from repro.align.records import MappedRead
        from repro.genome.reference import ReferenceGenome

        reference = ReferenceGenome("ACGTACGTACGT")
        # Five reads covering position 4 with 'C' instead of 'A'.
        alignments = []
        for i in range(5):
            mapped = MappedRead(
                read_name=f"r{i}",
                position=0,
                reverse=False,
                score=10,
                cigar=Cigar.from_string("4=1X7="),
            )
            alignments.append((mapped, "ACGTCCGTACGT"))
        calls = pileup_snp_calls(reference, alignments, min_depth=4)
        assert calls == {4: "C"}
