"""Admissibility tests for the concrete cascade stages.

The cascade is lossless only if no stage ever vetoes a candidate the
extension engine would have accepted.  For each stage the guarantee has
a precise shape:

* ``shouldered``: its base-count bound never exceeds the true semi-global
  edit distance (a universal lower bound);
* ``sneakysnake``: whenever the true distance fits the budget, the stage
  admits (the one-sided no-false-reject guarantee — its bound may
  overshoot on candidates that are already over budget, which is fine);
* ``myers``: exact — admits *iff* the true distance fits the budget.

Every property is checked against a reference full-DP semi-global
distance over seeded-random workloads (explicit ``random.Random`` per
repo policy, enforced by genaxlint GX101).
"""

import random

import pytest

from repro.align.records import AlignmentStats
from repro.filters import (
    MyersCandidateFilter,
    ShoulderedFilter,
    SneakySnakeFilter,
)
from repro.genome.reference import ReferenceGenome
from repro.genome.sequence import ALPHABET
from repro.pipeline.common import Candidate, fetch_window


def semiglobal_distance(query, text):
    """Min edits to align all of *query* against any substring of *text*."""
    previous = [0] * (len(text) + 1)
    for row, base in enumerate(query, start=1):
        current = [row] + [0] * len(text)
        for col, other in enumerate(text, start=1):
            current[col] = min(
                previous[col] + 1,
                current[col - 1] + 1,
                previous[col - 1] + (base != other),
            )
        previous = current
    return min(previous)


def random_cases(seed, count, text_len=40, query_len=24):
    rng = random.Random(seed)
    for _ in range(count):
        text = "".join(rng.choice(ALPHABET) for _ in range(
            rng.randrange(1, text_len)
        ))
        if rng.random() < 0.5:
            # Mutated substring: keeps plenty of within-budget cases.
            start = rng.randrange(len(text))
            query = list(text[start:start + query_len])
            for _ in range(rng.randrange(4)):
                if not query:
                    break
                pos = rng.randrange(len(query))
                query[pos] = rng.choice(ALPHABET)
            query = "".join(query)
        else:
            query = "".join(rng.choice(ALPHABET) for _ in range(
                rng.randrange(1, query_len)
            ))
        if query:
            yield query, text


def build_stage(stage_class, text, query, max_edits):
    """Stage + candidate whose fetched window is exactly *text*."""
    reference = ReferenceGenome(text, name="bounds-test")
    slack = max(0, len(text) - len(query))
    stage = stage_class(reference, max_edits, slack)
    candidate = Candidate(window_start=0, reverse=False, seed_length=len(query))
    assert fetch_window(reference, candidate, len(query), slack) == text
    return stage, candidate


class TestShouldered:
    def test_bound_never_exceeds_true_distance(self):
        stage = ShoulderedFilter(ReferenceGenome("ACGT", name="t"), 2, 0)
        for query, text in random_cases(seed=101, count=60):
            bound = stage.distance_bound(query, text)
            assert bound <= semiglobal_distance(query, text), (query, text)

    def test_counts_excess_bases(self):
        stage = ShoulderedFilter(ReferenceGenome("ACGT", name="t"), 2, 0)
        assert stage.distance_bound("AAAA", "AATT") == 2
        assert stage.distance_bound("ACGT", "ACGT") == 0
        assert stage.distance_bound("GGGG", "AAAA") == 4

    @pytest.mark.parametrize("max_edits", [0, 1, 3])
    def test_never_falsely_rejects(self, max_edits):
        for query, text in random_cases(seed=102, count=40):
            stage, candidate = build_stage(
                ShoulderedFilter, text, query, max_edits
            )
            if semiglobal_distance(query, text) <= max_edits:
                assert stage.admit(query, candidate, AlignmentStats())

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ShoulderedFilter(ReferenceGenome("ACGT", name="t"), -1, 0)


class TestSneakySnake:
    @pytest.mark.parametrize("max_edits", [0, 1, 3])
    def test_never_falsely_rejects(self, max_edits):
        for query, text in random_cases(seed=103, count=40):
            stage, candidate = build_stage(
                SneakySnakeFilter, text, query, max_edits
            )
            if semiglobal_distance(query, text) <= max_edits:
                assert stage.admit(query, candidate, AlignmentStats())

    def test_batch_verdicts_match_scalar(self):
        # Heterogeneous lengths in one batch: lane independence through
        # the sentinel padding.
        cases = list(random_cases(seed=104, count=16))
        texts = [text for _, text in cases]
        reference = ReferenceGenome("".join(texts), name="batch-test")
        stage = SneakySnakeFilter(reference, 2, 5)
        jobs, offset = [], 0
        for query, text in cases:
            jobs.append(
                (query, Candidate(offset, reverse=False, seed_length=len(query)))
            )
            offset += len(text)
        batched = stage.admit_batch(jobs, AlignmentStats())
        scalar = [
            stage.admit(query, candidate, AlignmentStats())
            for query, candidate in jobs
        ]
        assert batched == scalar

    def test_distance_bounds_edge_shapes(self):
        stage = SneakySnakeFilter(ReferenceGenome("ACGT", name="t"), 1, 0)
        assert stage.distance_bounds([], []).tolist() == []
        assert stage.distance_bounds(["ACGT"], ["ACGT"]).tolist() == [0]
        with pytest.raises(ValueError):
            stage.distance_bounds(["A", "C"], ["A"])

    def test_detects_hopeless_windows(self):
        stage = SneakySnakeFilter(ReferenceGenome("ACGT", name="t"), 1, 0)
        bounds = stage.distance_bounds(["AAAAAAAA"], ["TTTTTTTT"])
        assert bounds[0] > 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SneakySnakeFilter(ReferenceGenome("ACGT", name="t"), -1, 0)


class TestMyers:
    @pytest.mark.parametrize("max_edits", [0, 1, 3])
    def test_exactly_the_budget_membership_test(self, max_edits):
        for query, text in random_cases(seed=105, count=40):
            stage, candidate = build_stage(
                MyersCandidateFilter, text, query, max_edits
            )
            admitted = stage.admit(query, candidate, AlignmentStats())
            within = semiglobal_distance(query, text) <= max_edits
            assert admitted == within, (query, text, max_edits)


class TestCycleCharging:
    @pytest.mark.parametrize(
        "stage_class", [ShoulderedFilter, SneakySnakeFilter, MyersCandidateFilter]
    )
    def test_each_admit_charges_the_streamed_window(self, stage_class):
        text = "ACGTACGTACGTACGT"
        query = "ACGTACGT"
        stage, candidate = build_stage(stage_class, text, query, 2)
        stats = AlignmentStats()
        stage.admit(query, candidate, stats)
        assert stats.prefilter_cycles == len(text)
