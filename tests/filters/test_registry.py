"""Tests for the filter registry and cascade-spec parsing."""

import pytest

from repro.filters import (
    DEFAULT_CASCADE,
    FilterCascade,
    FilterSpec,
    build_cascade,
    filter_names,
    get_filter,
    parse_cascade_spec,
    register_filter,
    render_filter_table,
)
from repro.genome.reference import ReferenceGenome


def tiny_reference():
    return ReferenceGenome("ACGT" * 8, name="registry-test")


class TestRegistry:
    def test_builtin_filters_registered_cheapest_first(self):
        assert filter_names() == ("shouldered", "sneakysnake", "myers")

    def test_default_cascade_names_registered_filters(self):
        assert DEFAULT_CASCADE == ("shouldered", "sneakysnake", "myers")
        for name in DEFAULT_CASCADE:
            assert get_filter(name).name == name

    def test_get_filter_unknown_lists_known_names(self):
        with pytest.raises(ValueError, match="sneakysnake"):
            get_filter("no-such-filter")

    def test_duplicate_registration_rejected(self):
        spec = get_filter("myers")
        with pytest.raises(ValueError, match="already registered"):
            register_filter(
                FilterSpec(
                    name=spec.name,
                    summary="duplicate",
                    batched=spec.batched,
                    build=spec.build,
                )
            )

    def test_batched_flag_matches_structural_capability(self):
        reference = tiny_reference()
        for name in filter_names():
            spec = get_filter(name)
            stage = spec.build(reference, 2, 4)
            assert hasattr(stage, "admit_batch") == spec.batched, name
            assert stage.name == name


class TestCascadeSpec:
    @pytest.mark.parametrize("spec", ["", "  ", "none"])
    def test_empty_specs_mean_no_cascade(self, spec):
        assert parse_cascade_spec(spec) == ()

    def test_order_and_whitespace(self):
        assert parse_cascade_spec(" myers , shouldered ") == (
            "myers",
            "shouldered",
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown filter"):
            parse_cascade_spec("shouldered,bogus")

    def test_repeated_name_rejected(self):
        with pytest.raises(ValueError, match="repeated"):
            parse_cascade_spec("myers,myers")


class TestBuildCascade:
    def test_empty_names_build_no_cascade(self):
        assert build_cascade((), tiny_reference(), 2, 4) is None

    def test_default_cascade_builds_in_order(self):
        cascade = build_cascade(DEFAULT_CASCADE, tiny_reference(), 2, 4)
        assert isinstance(cascade, FilterCascade)
        assert cascade.stage_names == DEFAULT_CASCADE
        assert cascade.batch_capable  # sneakysnake brings the batch path

    def test_stages_share_budget_and_slack(self):
        cascade = build_cascade(DEFAULT_CASCADE, tiny_reference(), 3, 7)
        for stage in cascade.stages:
            assert stage.max_edits == 3
            assert stage.window_slack == 7


class TestFilterTable:
    def test_table_covers_every_registered_filter(self):
        table = render_filter_table()
        for name in filter_names():
            assert f"| `{name}` |" in table

    def test_table_batched_column_matches_specs(self):
        rows = render_filter_table().splitlines()[2:]
        for name, row in zip(filter_names(), rows):
            expected = "yes" if get_filter(name).batched else "no"
            assert f"| {expected} |" in row, name
