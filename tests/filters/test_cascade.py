"""Unit tests for the FilterCascade composition semantics.

These tests use stub stages so every property of the cascade itself —
ordering, short-circuiting, once-per-candidate charging, false-accept
attribution, scalar/batched equivalence — is pinned independently of any
concrete filter kernel (those get their own admissibility tests in
test_stage_bounds.py).
"""

import dataclasses

import pytest

from repro.align.records import AlignmentStats
from repro.filters import FilterCascade, FilterStageStats
from repro.pipeline.common import Candidate

CANDIDATE = Candidate(window_start=0, reverse=False, seed_length=7)


class ScalarStub:
    """Scalar-only stage: admits iff the verdict function says so."""

    def __init__(self, name, verdict, cycles=3):
        self.name = name
        self._verdict = verdict
        self._cycles = cycles
        self.calls = []

    def admit(self, oriented, candidate, stats):
        self.calls.append(oriented)
        stats.prefilter_cycles += self._cycles
        return self._verdict(oriented)


class BatchStub(ScalarStub):
    """Batch-capable stage whose admit_batch is pure batching."""

    def admit_batch(self, jobs, stats):
        return [self.admit(oriented, candidate, stats)
                for oriented, candidate in jobs]


class BrokenBatchStub(ScalarStub):
    """Batch stage violating the one-verdict-per-job contract."""

    def admit_batch(self, jobs, stats):
        return []


def jobs_for(reads):
    return [(read, CANDIDATE) for read in reads]


class TestConstruction:
    def test_empty_cascade_rejected(self):
        with pytest.raises(ValueError):
            FilterCascade(())

    def test_stage_names_follow_stage_order(self):
        cascade = FilterCascade(
            [ScalarStub("first", bool), ScalarStub("second", bool)]
        )
        assert cascade.stage_names == ("first", "second")
        assert len(cascade) == 2

    def test_batch_capability_detected_structurally(self):
        scalar_only = FilterCascade([ScalarStub("a", bool)])
        mixed = FilterCascade([ScalarStub("a", bool), BatchStub("b", bool)])
        assert not scalar_only.batch_capable
        assert mixed.batch_capable

    def test_report_pairs_names_with_counters(self):
        cascade = FilterCascade([ScalarStub("only", bool)])
        rows = cascade.report()
        assert [name for name, _ in rows] == ["only"]
        assert all(isinstance(s, FilterStageStats) for _, s in rows)


class TestScalarPath:
    def test_admit_depth_counts_stages_passed(self):
        cascade = FilterCascade(
            [ScalarStub("a", lambda r: True),
             ScalarStub("b", lambda r: r != "TT"),
             ScalarStub("c", lambda r: True)]
        )
        stats = AlignmentStats()
        assert cascade.admit_depth("AA", CANDIDATE, stats) == 3
        assert cascade.admit_depth("TT", CANDIDATE, stats) == 1

    def test_rejection_short_circuits_later_stages(self):
        first = ScalarStub("a", lambda r: False)
        second = ScalarStub("b", lambda r: True)
        cascade = FilterCascade([first, second])
        assert not cascade.admit("AC", CANDIDATE, AlignmentStats())
        assert first.calls == ["AC"]
        assert second.calls == []

    def test_shared_stats_charged_exactly_once_per_candidate(self):
        cascade = FilterCascade(
            [ScalarStub("a", lambda r: True),
             ScalarStub("b", lambda r: r != "TT")]
        )
        stats = AlignmentStats()
        cascade.admit("AA", CANDIDATE, stats)
        cascade.admit("TT", CANDIDATE, stats)
        assert stats.candidates_survived == 1
        assert stats.candidates_filtered == 1

    def test_false_accept_charged_to_every_earlier_stage(self):
        cascade = FilterCascade(
            [ScalarStub("a", lambda r: True),
             ScalarStub("b", lambda r: True),
             ScalarStub("c", lambda r: False)]
        )
        cascade.admit("AC", CANDIDATE, AlignmentStats())
        by_name = dict(cascade.report())
        assert by_name["a"].false_accepts == 1
        assert by_name["b"].false_accepts == 1
        assert by_name["c"].false_accepts == 0
        assert by_name["c"].rejected == 1

    def test_cycles_attributed_to_the_charging_stage(self):
        cascade = FilterCascade(
            [ScalarStub("cheap", lambda r: True, cycles=2),
             ScalarStub("dear", lambda r: False, cycles=11)]
        )
        stats = AlignmentStats()
        cascade.admit("AC", CANDIDATE, stats)
        by_name = dict(cascade.report())
        assert by_name["cheap"].cycles == 2
        assert by_name["dear"].cycles == 11
        assert stats.prefilter_cycles == 13

    def test_stage_stats_derived_fractions(self):
        stage = FilterStageStats(checked=10, rejected=6, false_accepts=1)
        assert stage.survived == 4
        assert stage.reject_fraction == pytest.approx(0.6)
        assert stage.false_accept_fraction == pytest.approx(0.25)
        assert FilterStageStats().reject_fraction == 0.0
        assert FilterStageStats().false_accept_fraction == 0.0


class TestBatchPath:
    READS = ["AAAA", "TTTT", "ACGT", "GGGG", "TTAA"]

    @staticmethod
    def build(cls_a, cls_b, cls_c):
        return FilterCascade(
            [cls_a("a", lambda r: "G" not in r),
             cls_b("b", lambda r: r != "TTTT"),
             cls_c("c", lambda r: r[0] != "T")]
        )

    @pytest.mark.parametrize("shapes", [
        (ScalarStub, ScalarStub, ScalarStub),
        (BatchStub, BatchStub, BatchStub),
        (ScalarStub, BatchStub, ScalarStub),
        (BatchStub, ScalarStub, BatchStub),
    ])
    def test_batch_depths_match_scalar_path(self, shapes):
        batch_cascade = self.build(*shapes)
        scalar_cascade = self.build(ScalarStub, ScalarStub, ScalarStub)
        batch_stats = AlignmentStats()
        scalar_stats = AlignmentStats()
        depths = batch_cascade.admit_batch_depths(
            jobs_for(self.READS), batch_stats
        )
        expected = [
            scalar_cascade.admit_depth(read, CANDIDATE, scalar_stats)
            for read in self.READS
        ]
        assert depths == expected
        assert dataclasses.asdict(batch_stats) == dataclasses.asdict(
            scalar_stats
        )
        for (_, got), (_, want) in zip(
            batch_cascade.report(), scalar_cascade.report()
        ):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_admit_batch_is_depth_equals_length(self):
        cascade = self.build(BatchStub, ScalarStub, BatchStub)
        verdicts = cascade.admit_batch(jobs_for(self.READS), AlignmentStats())
        assert verdicts == [
            self.build(ScalarStub, ScalarStub, ScalarStub).admit(
                read, CANDIDATE, AlignmentStats()
            )
            for read in self.READS
        ]

    def test_later_stage_sees_only_survivors(self):
        first = BatchStub("a", lambda r: "G" not in r)
        second = ScalarStub("b", bool)
        cascade = FilterCascade([first, second])
        cascade.admit_batch_depths(jobs_for(self.READS), AlignmentStats())
        assert second.calls == [r for r in self.READS if "G" not in r]

    def test_empty_batch_is_a_no_op(self):
        cascade = self.build(BatchStub, BatchStub, BatchStub)
        stats = AlignmentStats()
        assert cascade.admit_batch_depths([], stats) == []
        assert stats.candidates_filtered == 0
        assert stats.candidates_survived == 0

    def test_wrong_verdict_count_raises(self):
        cascade = FilterCascade([BrokenBatchStub("broken", bool)])
        with pytest.raises(ValueError, match="broken"):
            cascade.admit_batch(jobs_for(self.READS), AlignmentStats())
