"""Tests for repro.model.schedule."""

import pytest

from repro.model import constants
from repro.model.schedule import GenAxSchedule, ScheduleResult


class TestSchedule:
    def test_resolves_all_segments(self):
        schedule = GenAxSchedule(segments=16)
        result = schedule.resolve()
        assert len(result.segments) == 16
        assert result.total_s > 0

    def test_extension_is_the_bottleneck_at_paper_operating_point(self):
        result = GenAxSchedule().resolve()
        assert result.bottleneck == "extension"
        assert result.utilization("extension") > result.utilization("seeding")

    def test_throughput_in_paper_ballpark(self):
        kreads = GenAxSchedule().kreads_per_second()
        assert 2_000 < kreads < 10_000  # paper: 4,058

    def test_agrees_with_coarse_throughput_model(self):
        """The timeline model and the coarse model must roughly agree."""
        from repro.model.throughput import GenAxThroughputModel

        fine = GenAxSchedule(cycles_per_hit=GenAxThroughputModel().cycle_model.cycles_per_hit)
        coarse = GenAxThroughputModel()
        ratio = fine.kreads_per_second() / coarse.kreads_per_second()
        assert 0.5 < ratio < 2.0

    def test_loads_overlap_compute(self):
        """Doubling table traffic must not double runtime when compute-bound."""
        base = GenAxSchedule().resolve().total_s
        heavy_traffic = GenAxSchedule(
            traffic=type(GenAxSchedule().traffic)(
                index_table_bytes=2 * constants.INDEX_TABLE_MB * 1e6,
                position_table_bytes=2 * constants.POSITION_TABLE_MB * 1e6,
            )
        ).resolve().total_s
        assert heavy_traffic < 1.5 * base

    def test_more_lanes_less_time(self):
        slow = GenAxSchedule(sillax_lanes=2).resolve().total_s
        fast = GenAxSchedule(sillax_lanes=8).resolve().total_s
        assert fast < slow

    def test_exact_fraction_reduces_extension_time(self):
        few_exact = GenAxSchedule(exact_fraction=0.1).resolve()
        many_exact = GenAxSchedule(exact_fraction=0.9).resolve()
        assert many_exact.stage_busy_s["extension"] < few_exact.stage_busy_s["extension"]

    def test_utilization_bounded(self):
        result = GenAxSchedule().resolve()
        for stage in ("seeding", "extension", "tables", "reads"):
            assert 0.0 <= result.utilization(stage) <= 1.0
