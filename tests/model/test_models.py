"""Tests for repro.model: calibration against every paper-reported number."""

import pytest

from repro.model import constants
from repro.model.area import GenAxAreaModel
from repro.model.memory import DDR4Model, SegmentTraffic, read_stream_bytes, table_load_time_s
from repro.model.power import GenAxPowerModel
from repro.model.synthesis import (
    EDIT_PE,
    SCORING_PE,
    TRACEBACK_PE,
    frequency_sweep,
    optimal_frequency,
    system_frequency,
)
from repro.model.throughput import (
    GenAxThroughputModel,
    GenAxWorkload,
    SillaXCycleModel,
    SillaXThroughputModel,
)


class TestConstants:
    def test_pe_count_formula(self):
        assert constants.SILLAX_PE_COUNT == (constants.EDIT_DISTANCE_BOUND + 1) ** 2

    def test_implied_baseline_throughputs(self):
        assert constants.BWA_MEM_THROUGHPUT_KREADS_S == pytest.approx(128.0, rel=0.01)
        assert constants.CUSHAW2_THROUGHPUT_KREADS_S == pytest.approx(56.05, rel=0.01)

    def test_genax_power_implied(self):
        assert constants.GENAX_POWER_W == pytest.approx(15.4, rel=0.01)


class TestSynthesis:
    def test_edit_machine_calibration_points(self):
        """Fig. 12 anchors: the quoted 2 GHz and 5 GHz design points."""
        assert EDIT_PE.machine_area_mm2(2.0, 40) == pytest.approx(0.012, rel=0.01)
        assert EDIT_PE.machine_power_w(2.0, 40) == pytest.approx(0.047, rel=0.01)
        assert EDIT_PE.area_um2(5.0) == pytest.approx(
            constants.SILLAX_PE_AREA_UM2_5GHZ, rel=0.01
        )

    def test_traceback_machine_calibration(self):
        assert TRACEBACK_PE.machine_area_mm2(2.0, 40) == pytest.approx(1.41, rel=0.01)
        assert TRACEBACK_PE.machine_power_w(2.0, 40) == pytest.approx(1.54, rel=0.01)

    def test_area_monotone_in_frequency(self):
        areas = [EDIT_PE.area_um2(f) for f in (1, 2, 3, 4, 5, 6)]
        assert areas == sorted(areas)

    def test_power_superlinear_in_frequency(self):
        assert EDIT_PE.power_uw(4.0) > 2 * EDIT_PE.power_uw(2.0)

    def test_beyond_fmax_rejected(self):
        with pytest.raises(ValueError):
            EDIT_PE.area_um2(7.0)
        with pytest.raises(ValueError):
            TRACEBACK_PE.area_um2(3.5)

    def test_system_knee_is_2ghz(self):
        """Fig. 12: '2 GHz is the inflection point'."""
        assert system_frequency() == pytest.approx(2.0)

    def test_edit_pe_meets_higher_clock(self):
        """§IV-A: edit PEs alone close timing at much higher clocks."""
        assert optimal_frequency(EDIT_PE) > 4.0

    def test_banded_sw_pe_ratio(self):
        """§VIII-C: a banded-SW PE is ~30x larger than a SillaX edit PE."""
        ratio = constants.BANDED_SW_PE_AREA_UM2 / EDIT_PE.area_um2(5.0)
        assert ratio == pytest.approx(constants.PE_AREA_RATIO, rel=0.05)

    def test_sweep_rows(self):
        rows = frequency_sweep(EDIT_PE, [1, 2, 3, 4, 5, 6, 7, 8])
        assert len(rows) == 6  # 7 and 8 GHz are unreachable
        assert rows[1][0] == 2


class TestMemory:
    def test_aggregate_bandwidth(self):
        memory = DDR4Model(stream_efficiency=1.0)
        assert memory.aggregate_bandwidth_bytes_per_s == pytest.approx(8 * 19.2e9)

    def test_stream_time_linear(self):
        memory = DDR4Model()
        assert memory.stream_time_s(2e9) == pytest.approx(2 * memory.stream_time_s(1e9))

    def test_segment_traffic_sums(self):
        traffic = SegmentTraffic()
        assert traffic.total_bytes == pytest.approx(
            48e6 + 18e6 + constants.SEGMENT_BASEPAIRS / 4
        )

    def test_full_table_pass_under_a_second(self):
        """All 512 segments' tables stream in well under the run time."""
        assert table_load_time_s() < 1.0

    def test_read_bytes(self):
        assert read_stream_bytes(reads=1_000, read_length=101) == pytest.approx(
            1_000 * (101 / 4 + 6)
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DDR4Model().stream_time_s(-1)


class TestSillaXThroughput:
    def test_cycle_model_components(self):
        cycles = SillaXCycleModel()
        assert cycles.stream_cycles == 101 + 40 + 2
        assert cycles.control_cycles == 3 * 41
        assert cycles.cycles_per_hit > cycles.stream_cycles

    def test_khits_in_paper_ballpark(self):
        """Fig. 14: 4 lanes at 2 GHz land in the 10^4 Khits/s decade."""
        model = SillaXThroughputModel()
        assert 10_000 < model.khits_per_second < 40_000

    def test_baseline_ratios_match_paper(self):
        series = SillaXThroughputModel().baseline_khits_per_second()
        assert series["SillaX"] / series["SeqAn (CPU)"] == pytest.approx(62.9, rel=0.01)
        assert series["SillaX"] / series["SW# (GPU)"] == pytest.approx(5287, rel=0.01)


class TestGenAxThroughput:
    def test_headline_within_15_percent(self):
        """Fig. 15a: the model lands near the paper's 4,058 Kreads/s."""
        model = GenAxThroughputModel()
        assert model.kreads_per_second() == pytest.approx(4058, rel=0.15)

    def test_read_load_fraction_near_10_percent(self):
        model = GenAxThroughputModel()
        assert 0.03 < model.read_load_fraction() < 0.15

    def test_speedup_ordering_preserved(self):
        series = GenAxThroughputModel().figure15a_kreads_s()
        assert series["GenAx"] > series["BWA-MEM (CPU)"] > series["CUSHAW2 (GPU)"]

    def test_speedup_magnitude(self):
        series = GenAxThroughputModel().figure15a_kreads_s()
        speedup = series["GenAx"] / series["BWA-MEM (CPU)"]
        assert 25 < speedup < 40  # paper: 31.7x

    def test_extension_dominates_compute(self):
        model = GenAxThroughputModel()
        breakdown = model.breakdown()
        assert breakdown["extension_s"] > breakdown["seeding_s"]

    def test_workload_sensitivity(self):
        light = GenAxThroughputModel(workload=GenAxWorkload(hits_per_nonexact_read=2))
        heavy = GenAxThroughputModel(workload=GenAxWorkload(hits_per_nonexact_read=50))
        assert light.kreads_per_second() > heavy.kreads_per_second()


class TestPowerArea:
    def test_power_total_matches_12x_headline(self):
        model = GenAxPowerModel()
        assert model.reduction_vs_cpu() == pytest.approx(12.0, rel=0.03)

    def test_power_breakdown_sums(self):
        model = GenAxPowerModel()
        breakdown = model.breakdown()
        assert breakdown["total_w"] == pytest.approx(
            breakdown["sillax_lanes_w"]
            + breakdown["seeding_lanes_w"]
            + breakdown["sram_w"]
        )

    def test_figure15b_ordering(self):
        series = GenAxPowerModel().figure15b_watts()
        assert series["GenAx"] < series["BWA-MEM (CPU)"]
        assert series["GenAx"] < series["CUSHAW2 (GPU)"]

    def test_table2_reproduced_exactly(self):
        model = GenAxAreaModel()
        table = model.table2()
        assert table["Seeding lanes (x128)"] == pytest.approx(4.224)
        assert table["SillaX lanes (x4)"] == pytest.approx(5.36)
        assert table["On-chip SRAM (68 MB)"] == pytest.approx(163.2)
        assert table["Total"] == pytest.approx(172.78, abs=0.01)

    def test_area_reduction_vs_cpu(self):
        assert GenAxAreaModel().reduction_vs_cpu() == pytest.approx(5.6, rel=0.02)

    def test_area_scales_with_configuration(self):
        half = GenAxAreaModel(seeding_lanes=64, sillax_lanes=2, sram_mb=34)
        assert half.total_mm2 == pytest.approx(GenAxAreaModel().total_mm2 / 2)
