"""Tests for repro.report (the regenerated-evaluation summary)."""

import pytest

from repro.report import bar, evaluation_report, series_lines


class TestBar:
    def test_full_scale(self):
        assert bar(10, 10, width=20) == "#" * 20

    def test_half_scale(self):
        assert bar(5, 10, width=20) == "#" * 10

    def test_clamps_overflow(self):
        assert bar(50, 10, width=8) == "#" * 8

    def test_zero_scale(self):
        assert bar(5, 0) == ""


class TestSeriesLines:
    def test_renders_each_entry(self):
        lines = series_lines({"a": 10.0, "b": 5.0}, "X")
        assert len(lines) == 2
        assert "a" in lines[0] and "X" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")


class TestEvaluationReport:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluation_report()

    def test_contains_every_figure(self, report):
        for marker in ("Fig. 12", "Fig. 14", "Fig. 15a", "Fig. 15b", "Table II"):
            assert marker in report

    def test_headline_numbers_present(self, report):
        assert "2.0 GHz" in report  # Fig. 12 knee
        assert "172.78" in report  # Table II total
        assert "reduction vs CPU: 12.0x" in report

    def test_paper_references_present(self, report):
        assert "paper 0.012 / 0.047" in report
        assert "787,265,109" in report

    def test_multiline_and_bounded(self, report):
        lines = report.splitlines()
        assert 30 < len(lines) < 100
        assert all(len(line) < 120 for line in lines)
