"""Tests for repro.sillax.composable (§IV-D)."""

import pytest

from repro.sillax.composable import ComposableArray, TileConfig
from repro.sillax.traceback_machine import TracebackMachine


class TestTileConfig:
    def test_unfused_engines(self):
        config = TileConfig(base_k=10, tiles=6)
        assert config.fused_engines == 0
        assert config.independent_engines == 6
        assert config.engine_ks == [10] * 6

    def test_paper_example_fuse_4_of_6(self):
        """§IV-D: fusing 2x2 of 6 tiles gives one 2K engine + 2 K engines."""
        config = TileConfig(base_k=10, tiles=6, fused_factor=2)
        assert config.fused_k == 20
        assert config.fused_engines == 1
        assert config.independent_engines == 2
        assert sorted(config.engine_ks) == [10, 10, 20]

    def test_max_fusion_is_sqrt_tiles(self):
        assert TileConfig(base_k=8, tiles=9).max_fused_factor == 3
        assert TileConfig(base_k=8, tiles=6).max_fused_factor == 2

    def test_overfusion_rejected(self):
        with pytest.raises(ValueError):
            TileConfig(base_k=8, tiles=6, fused_factor=3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TileConfig(base_k=-1, tiles=4)
        with pytest.raises(ValueError):
            TileConfig(base_k=4, tiles=0)
        with pytest.raises(ValueError):
            TileConfig(base_k=4, tiles=4, fused_factor=0)


class TestComposableArray:
    def test_required_factor(self):
        array = ComposableArray(base_k=5, tiles=9)
        assert array.required_factor(4) == 1
        assert array.required_factor(5) == 1
        assert array.required_factor(6) == 2
        assert array.required_factor(11) == 3

    def test_required_factor_beyond_array(self):
        array = ComposableArray(base_k=5, tiles=4)
        with pytest.raises(ValueError):
            array.required_factor(11)

    def test_reconfiguration_counted(self):
        array = ComposableArray(base_k=4, tiles=4)
        array.align("ACGT", "ACGT", k_needed=2)
        assert array.reconfigurations == 0
        array.align("ACGTACGTAC", "AC", k_needed=8)  # needs fusion
        assert array.reconfigurations == 1

    def test_fused_engine_matches_monolithic_machine(self):
        """A fused p x p block behaves as one machine with bound p*K."""
        array = ComposableArray(base_k=3, tiles=4)
        ref, qry = "ACGTACGTAC", "ACGAACCTAC"
        fused = array.align(ref, qry, k_needed=6)
        monolithic = TracebackMachine(6).align(ref, qry)
        assert fused.score == monolithic.score
        assert str(fused.cigar) == str(monolithic.cigar)

    def test_small_k_stays_unfused(self):
        array = ComposableArray(base_k=6, tiles=4)
        result = array.align("ACGTACGT", "ACGAACGT", k_needed=3)
        assert array.config.fused_factor == 1
        assert result.score == 3
