"""Tests for repro.sillax.lane."""

from repro.genome.reference import ReferenceGenome
from repro.sillax.lane import LaneStats, SillaXLane


class TestSillaXLane:
    def test_extend_exact_hit(self):
        ref = ReferenceGenome("TTTT" + "ACGTACGTAC" + "GGGG")
        lane = SillaXLane(k=4)
        outcome = lane.extend(ref, "ACGTACGTAC", window_start=4)
        assert outcome.score == 10
        assert outcome.position == 4

    def test_extend_with_errors(self):
        ref = ReferenceGenome("AAAA" + "ACGTACGTACGT" + "CCCC")
        lane = SillaXLane(k=4)
        outcome = lane.extend(ref, "ACGTACCTACGT", window_start=4)
        assert outcome.score == 11 - 4
        assert outcome.position == 4

    def test_window_clamped_at_genome_start(self):
        ref = ReferenceGenome("ACGTACGTACGT")
        lane = SillaXLane(k=2)
        outcome = lane.extend(ref, "ACGTACGT", window_start=-1)
        assert outcome.position >= 0

    def test_stats_accumulate(self):
        ref = ReferenceGenome("ACGT" * 10)
        lane = SillaXLane(k=2)
        lane.extend(ref, "ACGTACGT", 0)
        lane.extend(ref, "ACGTACGT", 4)
        assert lane.stats.extensions == 2
        assert lane.stats.cycles > 0
        assert lane.stats.cycles_per_extension > 0

    def test_unalignable_window(self):
        ref = ReferenceGenome("TTTTTTTTTTTT")
        lane = SillaXLane(k=1)
        outcome = lane.extend(ref, "ACGCACGA", 0)
        assert outcome.score == 0
        assert outcome.position == -1


class TestLaneStats:
    def test_merge(self):
        a = LaneStats(extensions=2, cycles=100, rerun_events=1, rerun_cycles=10,
                      rerun_cycle_samples=[10])
        b = LaneStats(extensions=3, cycles=200)
        a.merge(b)
        assert a.extensions == 5
        assert a.cycles == 300
        assert a.rerun_fraction == 0.2

    def test_empty_fractions(self):
        stats = LaneStats()
        assert stats.rerun_fraction == 0.0
        assert stats.cycles_per_extension == 0.0
