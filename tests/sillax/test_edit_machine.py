"""Tests for repro.sillax.edit_machine (§IV-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.core.silla import Silla
from repro.sillax.edit_machine import EditMachine, grid_positions

dna = st.text(alphabet="ACGT", max_size=14)


class TestGrid:
    def test_grid_positions_half_square(self):
        assert set(grid_positions(1)) == {(0, 0), (1, 0), (0, 1)}

    def test_pe_count(self):
        # 3 cells (two regular layers + wait) per grid position.
        machine = EditMachine(2)
        assert machine.pe_count == 18


class TestEditMachine:
    def test_identity(self):
        assert EditMachine(2).distance("GATTACA", "GATTACA") == 0

    def test_substitution(self):
        assert EditMachine(1).distance("ACGT", "AGGT") == 1

    def test_indel(self):
        assert EditMachine(2).distance("ACGT", "AACGTT") == 2

    def test_paper_walkthrough(self):
        assert EditMachine(2).distance("AXBCD", "YABCD") == 2

    def test_beyond_k(self):
        assert EditMachine(2).distance("AAAA", "TTTT") is None

    def test_empty(self):
        assert EditMachine(0).distance("", "") == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            EditMachine(-1)

    def test_cycles_linear_in_length(self):
        result = EditMachine(2).run("ACGT" * 30, "ACGT" * 30)
        assert result.distance == 0
        assert result.cycles <= 120 + 2 + 3

    def test_comparator_budget_is_2k_plus_1_per_cycle(self):
        """§IV-A: only 2K+1 fresh comparisons per cycle, reused diagonally."""
        k = 3
        machine = EditMachine(k)
        result = machine.run("ACGTACGT", "ACGTACGT")
        assert result.comparisons_computed == result.cycles * (2 * k + 1)

    def test_length_gap_short_circuit(self):
        result = EditMachine(1).run("A" * 10, "A")
        assert result.distance is None
        assert result.comparisons_computed == 0


class TestEquivalenceWithFunctionalSilla:
    """The systolic machine must match the abstract automaton exactly."""

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=120, deadline=None)
    def test_distance_equivalence(self, a, b, k):
        assert EditMachine(k).distance(a, b) == Silla(k).distance(a, b)

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=80, deadline=None)
    def test_matches_dp(self, a, b, k):
        truth = levenshtein(a, b)
        expected = truth if truth <= k else None
        assert EditMachine(k).distance(a, b) == expected
