"""Tests for repro.sillax.dense (vectorized scoring machine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.extension_oracle import extension_oracle
from repro.align.scoring import ScoringScheme
from repro.sillax.dense import DenseScoringMachine
from repro.sillax.scoring_machine import ScoringMachine

dna = st.text(alphabet="ACGT", max_size=12)


class TestDenseBasics:
    def test_perfect_match(self):
        result = DenseScoringMachine(2).run("ACGT", "ACGT")
        assert result.best_score == 4
        assert result.final_score == 4

    def test_empty_pair(self):
        result = DenseScoringMachine(1).run("", "")
        assert result.best_score == 0
        assert result.final_score == 0

    def test_one_empty(self):
        result = DenseScoringMachine(4).run("ACGT", "")
        assert result.final_score == -10  # open + 4 extends

    def test_no_alignment_within_k(self):
        result = DenseScoringMachine(1).run("AAAA", "TTTT")
        assert result.final_score is None
        assert result.best_score == 0

    def test_clipping(self):
        result = DenseScoringMachine(4).run("ACGTACGT" + "AAAA", "ACGTACGT" + "TTTT")
        assert result.best_score == 8

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            DenseScoringMachine(-1)

    def test_custom_scheme(self):
        scheme = ScoringScheme(match=2, substitution=-1, gap_open=-2, gap_extend=-1)
        result = DenseScoringMachine(1, scheme).run("ACGT", "ACGA")
        assert result.final_score == 6 - 1

    def test_wait_path_two_substitutions(self):
        """Fig. 3b: the 2-substitution solution through the wait cell."""
        result = DenseScoringMachine(2).run("AXBCD".replace("X", "T"), "YABCD".replace("Y", "G"))
        assert result.final_score is not None


class TestDenseEquivalence:
    """The dense model must be bit-exact against the reference machine."""

    @given(dna, dna, st.integers(0, 6))
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_machine(self, ref, qry, k):
        a = ScoringMachine(k).run(ref, qry)
        b = DenseScoringMachine(k).run(ref, qry)
        assert a.best_score == b.best_score
        assert a.final_score == b.final_score

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, ref, qry, k):
        oracle = extension_oracle(ref, qry, k)
        result = DenseScoringMachine(k).run(ref, qry)
        assert result.best_score == oracle.best_clipped_score
        assert result.final_score == oracle.final_score

    def test_large_k_long_strings(self):
        """The configuration the dense model exists for: K = 40, 101 bp."""
        import random

        rng = random.Random(47)
        reference = "".join(rng.choice("ACGT") for _ in range(141))
        query = list(reference[:101])
        for __ in range(6):
            query[rng.randrange(101)] = rng.choice("ACGT")
        query = "".join(query)
        a = ScoringMachine(40).run(reference, query)
        b = DenseScoringMachine(40).run(reference, query)
        assert a.best_score == b.best_score
        assert a.final_score == b.final_score
