"""Tests for repro.sillax.scoring_machine (§IV-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.extension_oracle import extension_oracle
from repro.align.scoring import BWA_MEM_SCHEME, ScoringScheme
from repro.sillax.scoring_machine import ScoringMachine

dna = st.text(alphabet="ACGT", max_size=12)


class TestBasics:
    def test_perfect_match(self):
        result = ScoringMachine(2).run("ACGT", "ACGT")
        assert result.best_score == 4
        assert result.final_score == 4

    def test_empty_pair(self):
        result = ScoringMachine(1).run("", "")
        assert result.best_score == 0
        assert result.final_score == 0

    def test_substitution_scored(self):
        result = ScoringMachine(1).run("ACGTACGT", "ACGAACGT")
        assert result.final_score == 7 - 4

    def test_clipping_keeps_good_prefix(self):
        """§IV-B: read ends are error-prone; the best prefix score wins."""
        result = ScoringMachine(4).run("ACGTACGT" + "AAAA", "ACGTACGT" + "TTTT")
        assert result.best_score == 8

    def test_affine_gap_penalty(self):
        # 2-base insertion: -(6 + 2) plus 4 matches.
        result = ScoringMachine(2).run("ACGT", "ACTTGT")
        assert result.final_score == 4 - 8

    def test_delayed_merging_open_gap_advantage(self):
        """Fig. 8: an open gap extends cheaper than re-opening.

        Aligning needs a 3-base deletion; path must keep the gap open
        across cycles (score -(6+3) not 3 * -(6+1)).
        """
        result = ScoringMachine(4).run("AATTTCC", "AACC")
        assert result.final_score == 4 - 9

    def test_no_alignment_within_k(self):
        result = ScoringMachine(1).run("AAAA", "TTTT")
        assert result.final_score is None
        assert result.best_score == 0

    def test_edit_budget_enforced(self):
        limited = ScoringMachine(1).run("AACC", "ATCT")
        relaxed = ScoringMachine(2).run("AACC", "ATCT")
        assert limited.final_score is None
        assert relaxed.final_score == 2 - 8

    def test_gap_can_open_after_match(self):
        """Conservative activation: indel edges fire even on matches."""
        # Best path: 3 matches, delete 2, 3 matches.
        result = ScoringMachine(3).run("ACGTTACG", "ACGACG")
        assert result.final_score == 6 - 8

    def test_cycle_accounting(self):
        result = ScoringMachine(3).run("ACGTACGT", "ACGTACGT")
        assert result.stream_cycles == 8 + 3 + 2
        assert result.backprop_cycles >= 3

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ScoringMachine(-1)

    def test_custom_scheme(self):
        scheme = ScoringScheme(match=2, substitution=-1, gap_open=-2, gap_extend=-1)
        result = ScoringMachine(1, scheme).run("ACGT", "ACGA")
        assert result.final_score == 6 - 1


class TestOracleEquivalence:
    """The machine is a systolic schedule of the edit-bounded Gotoh DP."""

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_clipped_and_final_scores(self, ref, qry, k):
        oracle = extension_oracle(ref, qry, k)
        machine = ScoringMachine(k).run(ref, qry)
        assert machine.best_score == oracle.best_clipped_score
        assert machine.final_score == oracle.final_score

    @given(dna, st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_self_alignment(self, s, k):
        result = ScoringMachine(k).run(s, s)
        assert result.best_score == len(s)
        assert result.final_score == len(s)


class TestBackPropagation:
    def test_backprop_agrees_with_direct_max(self):
        # run() asserts back-prop == direct max internally; exercise it on a
        # case with a rich state space.
        result = ScoringMachine(4).run("ACGTTGCAACGT", "ACGTGCATACGT")
        assert result.best_score > 0

    def test_backprop_cycles_scale_with_k(self):
        small = ScoringMachine(2).run("ACGTAC", "ACGTAC")
        large = ScoringMachine(8).run("ACGTAC", "ACGTAC")
        assert large.backprop_cycles >= small.backprop_cycles
