"""Tests for repro.sillax.traceback_machine (§IV-C)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.extension_oracle import extension_oracle
from repro.align.scoring import BWA_MEM_SCHEME
from repro.sillax.scoring_machine import ScoringMachine
from repro.sillax.traceback_machine import TracebackMachine

dna = st.text(alphabet="ACGT", max_size=12)


def mutate(rng: random.Random, s: str, errors: int) -> str:
    out = list(s)
    for _ in range(errors):
        p = rng.randrange(max(1, len(out)))
        roll = rng.random()
        if roll < 0.7 and out:
            out[p] = rng.choice([b for b in "ACGT" if b != out[p]])
        elif roll < 0.85:
            out.insert(p, rng.choice("ACGT"))
        elif out:
            del out[p]
    return "".join(out)


class TestBasics:
    def test_perfect_match_trace(self):
        result = TracebackMachine(2).align("ACGT", "ACGT")
        assert result.score == 4
        assert str(result.cigar) == "4="
        assert not result.reran

    def test_substitution_trace(self):
        # Long suffix after the mismatch makes crossing it worthwhile
        # (otherwise clipping at the mismatch ties and wins).
        result = TracebackMachine(1).align("ACGTACGTACGT", "ACGAACGTACGT")
        assert result.cigar.count("X") == 1
        assert result.score == 11 - 4

    def test_insertion_trace(self):
        ref = "ACGT" * 6
        qry = ref[:8] + "T" + ref[8:]  # ref[8] is 'A': a genuine insertion
        result = TracebackMachine(1).align(ref, qry)
        assert result.cigar.count("I") == 1
        assert result.score == 24 - 7

    def test_deletion_trace(self):
        ref = "ACGT" * 6
        qry = ref[:8] + ref[9:]
        result = TracebackMachine(1).align(ref, qry)
        assert result.cigar.count("D") == 1
        assert result.score == 23 - 7

    def test_clipped_tail_absent_from_trace(self):
        result = TracebackMachine(4).align("ACGTACGT" + "AAAA", "ACGTACGT" + "TTTT")
        assert result.score == 8
        assert result.alignment.query_end == 8

    def test_fully_clipped_read(self):
        result = TracebackMachine(1).align("AAAA", "TTTT")
        assert result.score == 0
        assert result.alignment is None
        assert result.cigar is None

    def test_empty_inputs(self):
        result = TracebackMachine(0).align("", "")
        assert result.score == 0

    def test_match_count_compression_long_run(self):
        """A long pure-match run compresses into one CIGAR element."""
        s = "ACGT" * 20
        result = TracebackMachine(2).align(s, s)
        assert result.cigar.ops == ((80, "="),)

    def test_cycle_accounting(self):
        result = TracebackMachine(3).align("ACGTACGT", "ACGTACGT")
        assert result.stream_cycles == 8 + 3 + 2
        assert result.control_cycles == 3 * 4
        assert result.collect_cycles == 8
        assert result.total_cycles >= result.stream_cycles


class TestTraceValidity:
    """Contract 4 of DESIGN.md: the trace re-scores to the reported score."""

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_trace_rescoring(self, ref, qry, k):
        result = TracebackMachine(k).align(ref, qry)
        oracle = extension_oracle(ref, qry, k)
        assert result.score == oracle.best_clipped_score
        if result.alignment is not None:
            a = result.alignment
            rescored = result.cigar.score(
                ref[: a.reference_end], qry[: a.query_end], BWA_MEM_SCHEME
            )
            assert rescored == result.score
            assert result.cigar.edit_count() <= k

    @given(dna, dna, st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_scoring_machine(self, ref, qry, k):
        tb = TracebackMachine(k).align(ref, qry)
        sm = ScoringMachine(k).run(ref, qry)
        assert tb.score == sm.best_score


class TestBrokenTrails:
    """§IV-C: pointer trails break rarely; re-execution recovers them."""

    def test_reruns_occur_and_recover_on_noisy_reads(self):
        rng = random.Random(41)
        machine = TracebackMachine(8)
        reran = 0
        for _ in range(40):
            ref = "".join(rng.choice("ACGT") for _ in range(60))
            qry = mutate(rng, ref[:50], rng.randrange(0, 4))[:50]
            result = machine.align(ref, qry)
            if result.alignment is not None:
                a = result.alignment
                rescored = result.cigar.score(
                    ref[: a.reference_end], qry[: a.query_end], BWA_MEM_SCHEME
                )
                assert rescored == result.score
            if result.reran:
                reran += 1
                assert result.rerun_cycles > 0
        # Re-execution should be the exception, not the rule (paper: 7.59%).
        assert 0 < reran < 20

    def test_rerun_cycles_bounded_by_stream_length(self):
        rng = random.Random(17)
        machine = TracebackMachine(6)
        for _ in range(20):
            ref = "".join(rng.choice("AC") for _ in range(40))
            qry = mutate(rng, ref[:36], 3)[:36]
            result = machine.align(ref, qry)
            if result.reran:
                # Each re-run replays at most one full stream.
                assert result.rerun_cycles <= result.rerun_count * result.stream_cycles
