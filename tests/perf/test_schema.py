"""The unified bench envelope: fingerprints, content address, legacy load."""

import json

import pytest

from repro.perf.schema import (
    BENCH_SCHEMA_VERSION,
    bench_envelope,
    compute_run_id,
    ensure_bench_out,
    load_bench,
    machine_info,
    write_bench,
)


def make_envelope(**kwargs):
    defaults = dict(
        quick=True,
        workload={"genome_bp": 1000, "reads": 4},
        payload={"cells": [{"backend": "genax", "jobs": 1, "work": {}}]},
    )
    defaults.update(kwargs)
    return bench_envelope("perf_matrix", **defaults)


class TestMachineInfo:
    def test_fields_present(self):
        info = machine_info()
        for key in ("cpu_count", "cpu_model", "numpy_version", "blas",
                    "python_version", "python_build", "start_method"):
            assert key in info, key
        assert info["cpu_count"] >= 1

    def test_stable_within_process(self):
        assert machine_info() == machine_info()


class TestEnvelope:
    def test_required_keys(self):
        result = make_envelope()
        for key in ("schema_version", "benchmark", "quick", "machine",
                    "git_sha", "workload", "payload", "recorded_utc",
                    "machine_fingerprint", "workload_fingerprint", "run_id"):
            assert key in result, key
        assert result["schema_version"] == BENCH_SCHEMA_VERSION

    def test_workload_fingerprint_ignores_machine_and_payload(self):
        a = make_envelope()
        b = make_envelope(payload={"cells": []})
        assert a["workload_fingerprint"] == b["workload_fingerprint"]
        assert a["run_id"] != b["run_id"]

    def test_workload_fingerprint_tracks_params_and_scale(self):
        base = make_envelope()
        other_params = make_envelope(workload={"genome_bp": 2000, "reads": 4})
        other_scale = make_envelope(quick=False)
        assert base["workload_fingerprint"] != other_params["workload_fingerprint"]
        assert base["workload_fingerprint"] != other_scale["workload_fingerprint"]

    def test_run_id_excludes_volatile_labels(self):
        result = make_envelope()
        relabelled = dict(result, recorded_utc="2020-01-01T00:00:00Z",
                          history={"sequence": 9})
        assert compute_run_id(relabelled) == result["run_id"]


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        out = tmp_path / "results" / "bench" / "BENCH_x.json"
        result = make_envelope()
        write_bench(ensure_bench_out(out), result)
        assert load_bench(out) == result

    def test_write_is_deterministic_bytes(self, tmp_path):
        result = make_envelope()
        a = tmp_path / "results" / "bench" / "a.json"
        b = tmp_path / "results" / "bench" / "b.json"
        write_bench(a, result)
        write_bench(b, result)
        assert a.read_bytes() == b.read_bytes()


class TestLegacyLoad:
    def test_v1_upgrades_in_memory(self, tmp_path):
        legacy = {
            "schema_version": 1,
            "benchmark": "bench_filters",
            "quick": False,
            "workload": {"repeat_copies": 400},
            "baseline": {"elapsed_s": 1.0},
            "acceptance": {"passed": True},
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(legacy))
        loaded = load_bench(path)
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["legacy_schema_version"] == 1
        assert loaded["payload"]["acceptance"] == {"passed": True}
        assert loaded["workload"] == {"repeat_copies": 400}
        assert loaded["run_id"]

    def test_v2_keeps_machine_section(self, tmp_path):
        legacy = {
            "schema_version": 2,
            "benchmark": "bench_parallel_scaling",
            "quick": True,
            "machine": {"cpu_count": 4, "start_method": "fork"},
            "workload": {"genome_bp": 50_000},
            "serial": {"elapsed_s": 2.0},
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(legacy))
        loaded = load_bench(path)
        assert loaded["legacy_schema_version"] == 2
        assert loaded["machine"] == {"cpu_count": 4, "start_method": "fork"}
        assert loaded["payload"]["serial"] == {"elapsed_s": 2.0}

    def test_committed_bench_files_load(self):
        from pathlib import Path

        bench_dir = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "results" / "bench"
        )
        for name in ("BENCH_filters.json", "BENCH_parallel.json"):
            loaded = load_bench(bench_dir / name)
            assert loaded["schema_version"] == BENCH_SCHEMA_VERSION

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="schema_version"):
            load_bench(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_bench(path)


class TestEnsureBenchOut:
    def test_accepts_results_bench(self, tmp_path):
        ok = tmp_path / "results" / "bench" / "BENCH_matrix.json"
        assert ensure_bench_out(ok) == ok

    @pytest.mark.parametrize("relative", [
        "results/BENCH_matrix.json",
        "results/paper/BENCH_matrix.json",
        "bench/BENCH_matrix.json",
        "BENCH_matrix.json",
    ])
    def test_refuses_everything_else(self, tmp_path, relative):
        with pytest.raises(ValueError, match="results/bench"):
            ensure_bench_out(tmp_path / relative)
