"""The history store, driven through a ManualClock fake — no real time."""

import json

import pytest

from repro.perf.history import HistoryStore, render_history
from repro.perf.schema import bench_envelope
from repro.telemetry.clock import ManualClock


def make_result(tag="a", **kwargs):
    defaults = dict(
        quick=True,
        workload={"tag": tag},
        payload={"cells": []},
    )
    defaults.update(kwargs)
    return bench_envelope("perf_matrix", **defaults)


@pytest.fixture()
def store(tmp_path):
    return HistoryStore(tmp_path / "history", clock=ManualClock(start=100.0))


class TestAppend:
    def test_creates_content_addressed_file(self, store):
        result = make_result()
        run_id = store.append(result)
        assert run_id == result["run_id"]
        path = store.root / f"{run_id}.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["history"] == {"sequence": 1, "recorded_at": 100.0}

    def test_idempotent_by_content(self, store):
        result = make_result()
        first = store.append(result)
        second = store.append(dict(result))
        assert first == second
        assert len(list(store.root.glob("*.json"))) == 1
        assert [r["history"]["sequence"] for r in store.runs()] == [1]

    def test_sequence_increments_per_distinct_run(self, store):
        store.append(make_result("a"))
        store.append(make_result("b"))
        store.append(make_result("c"))
        assert [r["history"]["sequence"] for r in store.runs()] == [1, 2, 3]

    def test_recorded_at_comes_from_injected_clock(self, tmp_path):
        clock = ManualClock(start=5.0)
        store = HistoryStore(tmp_path, clock=clock)
        store.append(make_result("a"))
        clock.advance(10.0)
        store.append(make_result("b"))
        stamps = [r["history"]["recorded_at"] for r in store.runs()]
        assert stamps == [5.0, 15.0]

    def test_rejects_legacy_shaped_results(self, store):
        with pytest.raises(ValueError, match="schema_version"):
            store.append({"schema_version": 1, "benchmark": "bench_filters"})


class TestQuery:
    def test_runs_ordered_by_sequence_not_name(self, store):
        # Append in an order where run ids do not sort like sequences.
        ids = [store.append(make_result(tag)) for tag in ("z", "a", "m")]
        assert [r["run_id"] for r in store.runs()] == ids

    def test_latest_matches_workload_fingerprint(self, store):
        a1 = make_result("a")
        b1 = make_result("b")
        a2 = make_result("a", payload={"cells": [{"x": 1}]})
        for result in (a1, b1, a2):
            store.append(result)
        hit = store.latest(
            benchmark="perf_matrix",
            workload_fingerprint=a1["workload_fingerprint"],
        )
        assert hit["run_id"] == a2["run_id"]  # newest matching, not first

    def test_latest_excludes_current_run(self, store):
        a1 = make_result("a")
        a2 = make_result("a", payload={"cells": [{"x": 1}]})
        store.append(a1)
        store.append(a2)
        hit = store.latest(
            workload_fingerprint=a1["workload_fingerprint"],
            exclude_run_id=a2["run_id"],
        )
        assert hit["run_id"] == a1["run_id"]

    def test_latest_empty_store(self, store):
        assert store.latest(benchmark="perf_matrix") is None

    def test_latest_machine_fingerprint_filter(self, store):
        result = make_result("a")
        store.append(result)
        assert store.latest(machine_fingerprint="0" * 16) is None
        assert (
            store.latest(machine_fingerprint=result["machine_fingerprint"])
            is not None
        )


class TestRender:
    def test_empty_store_message(self, store):
        assert "no recorded runs" in render_history(store)

    def test_table_lists_every_run_in_order(self, store):
        first = store.append(make_result("a"))
        second = store.append(make_result("b"))
        table = render_history(store)
        lines = table.splitlines()
        assert "run id" in lines[0]
        assert first in lines[1]
        assert second in lines[2]
