"""The regression gate: pass / fail / missing-baseline / fingerprint paths.

Everything runs against a ManualClock-driven fake history store; no
benchmark is executed, so the gate's decision logic is tested in
isolation with hand-built matrix envelopes.
"""

import copy

import pytest

from repro.perf.gate import (
    GATE_WALL_CLOCK,
    GATE_WORK_COUNT,
    evaluate_gate,
)
from repro.perf.history import HistoryStore
from repro.perf.schema import bench_envelope, compute_run_id
from repro.telemetry.clock import ManualClock


def make_matrix_result(
    *,
    candidates=100,
    extensions=40,
    reads_mapped=16,
    elapsed_s=1.0,
    jobs=1,
    backend="genax",
    extra_cell=None,
):
    cells = [{
        "backend": backend,
        "jobs": jobs,
        "profile": "illumina-small",
        "work": {
            "candidates_checked": candidates,
            "extensions": extensions,
            "reads_mapped": reads_mapped,
        },
        "wall": {"elapsed_s": elapsed_s, "reads_per_s": 16 / elapsed_s},
    }]
    if extra_cell is not None:
        cells.append(extra_cell)
    return bench_envelope(
        "perf_matrix",
        quick=True,
        workload={"profiles": {"illumina-small": {"reads": 16}}},
        payload={"cells": cells},
    )


def refresh_run_id(result):
    """Re-address a hand-mutated envelope (payload edits change the id)."""
    result["run_id"] = compute_run_id(result)
    return result


@pytest.fixture()
def store(tmp_path):
    return HistoryStore(tmp_path / "history", clock=ManualClock())


class TestPassPath:
    def test_identical_runs_pass(self, store):
        baseline = make_matrix_result()
        store.append(baseline)
        current = refresh_run_id(
            copy.deepcopy(make_matrix_result(elapsed_s=1.1))
        )
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert report.passed
        assert report.outcome == "pass"
        assert report.baseline_run_id == baseline["run_id"]
        assert report.cells_compared == 1
        assert report.metrics_compared == 3
        assert report.findings == []

    def test_work_improvement_passes(self, store):
        store.append(make_matrix_result(candidates=100))
        current = make_matrix_result(candidates=50, elapsed_s=0.9)
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert report.passed


class TestFailPath:
    def test_injected_2x_candidate_regression_fails_with_diagnostic(
        self, store
    ):
        # The acceptance-criteria scenario: double the candidate count,
        # the gate must fail naming the metric, the backend, and the
        # baseline run id.
        baseline = make_matrix_result(candidates=100)
        store.append(baseline)
        current = make_matrix_result(candidates=200, elapsed_s=1.2)
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert not report.passed
        assert report.outcome == "fail"
        finding = next(
            f for f in report.findings if f.metric == "candidates_checked"
        )
        assert finding.backend == "genax"
        assert finding.baseline_run_id == baseline["run_id"]
        assert finding.current == 200
        assert finding.baseline == 100
        rendered = report.render()
        assert "candidates_checked" in rendered
        assert "genax" in rendered
        assert baseline["run_id"] in rendered
        assert "FAIL" in rendered

    def test_single_extra_unit_of_work_fails_at_default_tolerance(
        self, store
    ):
        # Work counts are deterministic: tolerance 1.0 means any
        # increase at all is a regression.
        store.append(make_matrix_result(extensions=40))
        current = make_matrix_result(extensions=41)
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert not report.passed

    def test_lost_mapped_read_fails_even_though_count_decreased(self, store):
        store.append(make_matrix_result(reads_mapped=16))
        current = make_matrix_result(reads_mapped=15)
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert not report.passed
        finding = report.findings[0]
        assert finding.metric == "reads_mapped"
        assert finding.direction == "decrease"
        assert "fell below" in finding.render()

    def test_tolerance_widens_the_limit(self, store):
        store.append(make_matrix_result(candidates=100))
        current = make_matrix_result(candidates=150)
        assert not evaluate_gate(
            current, store, mode=GATE_WORK_COUNT
        ).passed
        assert evaluate_gate(
            current, store, mode=GATE_WORK_COUNT, tolerance=1.6
        ).passed


class TestMissingBaseline:
    def test_empty_history_fails_closed(self, store):
        report = evaluate_gate(make_matrix_result(), store)
        assert report.outcome == "missing-baseline"
        assert not report.passed
        assert "no recorded baseline" in report.render()

    def test_allow_missing_downgrades_to_pass(self, store):
        report = evaluate_gate(
            make_matrix_result(), store, allow_missing=True
        )
        assert report.passed

    def test_different_workload_is_not_a_baseline(self, store):
        other = make_matrix_result()
        other_workload = bench_envelope(
            "perf_matrix",
            quick=False,
            workload={"profiles": {"repeat-rich": {"reads": 8}}},
            payload=other["payload"],
        )
        store.append(other_workload)
        report = evaluate_gate(make_matrix_result(), store)
        assert report.outcome == "missing-baseline"

    def test_own_recording_is_not_its_baseline(self, store):
        current = make_matrix_result()
        store.append(current)
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert report.outcome == "missing-baseline"


class TestWallClockMode:
    def test_fingerprint_mismatch_outcome(self, store):
        baseline = make_matrix_result()
        mismatched = dict(copy.deepcopy(baseline))
        mismatched["machine_fingerprint"] = "f" * 16
        refresh_run_id(mismatched)
        store.append(mismatched)
        report = evaluate_gate(
            make_matrix_result(elapsed_s=1.0), store, mode=GATE_WALL_CLOCK
        )
        assert report.outcome == "fingerprint-mismatch"
        assert not report.passed
        assert "machine" in report.render()

    def test_within_tolerance_band_passes(self, store):
        store.append(make_matrix_result(elapsed_s=1.0))
        report = evaluate_gate(
            make_matrix_result(elapsed_s=1.2), store, mode=GATE_WALL_CLOCK
        )
        assert report.passed
        assert report.tolerance == 1.25

    def test_beyond_tolerance_band_fails(self, store):
        store.append(make_matrix_result(elapsed_s=1.0))
        report = evaluate_gate(
            make_matrix_result(elapsed_s=1.3), store, mode=GATE_WALL_CLOCK
        )
        assert not report.passed
        assert report.findings[0].metric == "elapsed_s"

    def test_work_count_ignores_machine_fingerprint(self, store):
        baseline = make_matrix_result()
        mismatched = dict(copy.deepcopy(baseline))
        mismatched["machine_fingerprint"] = "f" * 16
        refresh_run_id(mismatched)
        store.append(mismatched)
        report = evaluate_gate(
            make_matrix_result(elapsed_s=2.0), store, mode=GATE_WORK_COUNT
        )
        assert report.passed


class TestShapeChanges:
    def test_new_cell_is_noted_not_failed(self, store):
        store.append(make_matrix_result())
        current = make_matrix_result(extra_cell={
            "backend": "bitvector",
            "jobs": 1,
            "profile": "illumina-small",
            "work": {"candidates_checked": 5},
            "wall": {"elapsed_s": 0.1, "reads_per_s": 160.0},
        })
        report = evaluate_gate(current, store, mode=GATE_WORK_COUNT)
        assert report.passed
        assert any("no baseline" in note for note in report.notes)

    def test_missing_cell_is_noted(self, store):
        store.append(make_matrix_result(extra_cell={
            "backend": "bitvector",
            "jobs": 1,
            "profile": "illumina-small",
            "work": {"candidates_checked": 5},
            "wall": {"elapsed_s": 0.1, "reads_per_s": 160.0},
        }))
        report = evaluate_gate(make_matrix_result(), store)
        assert report.passed
        assert any(
            "missing from the current run" in note for note in report.notes
        )


class TestValidation:
    def test_unknown_mode_rejected(self, store):
        with pytest.raises(ValueError, match="unknown gate mode"):
            evaluate_gate(make_matrix_result(), store, mode="vibes")

    def test_non_matrix_result_rejected(self, store):
        other = bench_envelope(
            "bench_filters", quick=True, workload={}, payload={}
        )
        with pytest.raises(ValueError, match="perf_matrix"):
            evaluate_gate(other, store)
