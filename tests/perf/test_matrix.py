"""The matrix runner on a tiny workload: determinism and output guard."""

import pytest

from repro.perf.matrix import MatrixSpec, cell_key, run_matrix

#: A deliberately tiny repeat-rich workload so the sweep stays fast.
TINY_OVERRIDES = {"repeat-rich": {"repeat_copies": 12, "reads": 4}}


def tiny_spec(backends=("bitvector",)):
    return MatrixSpec(
        backends=tuple(backends),
        jobs=(1,),
        profiles=("repeat-rich",),
        quick=True,
    )


@pytest.fixture(scope="module")
def tiny_result():
    return run_matrix(tiny_spec(), profile_overrides=TINY_OVERRIDES)


class TestEnvelope:
    def test_result_is_a_matrix_envelope(self, tiny_result):
        assert tiny_result["benchmark"] == "perf_matrix"
        assert tiny_result["quick"] is True
        cells = tiny_result["payload"]["cells"]
        assert [cell_key(c) for c in cells] == [
            ("bitvector", 1, "repeat-rich")
        ]

    def test_overrides_recorded_in_workload_params(self, tiny_result):
        params = tiny_result["workload"]["profiles"]["repeat-rich"]
        assert params["repeat_copies"] == 12
        assert params["reads"] == 4
        assert params["kmer"] == 10  # operating point travels with params

    def test_cell_has_work_and_wall_families(self, tiny_result):
        cell = tiny_result["payload"]["cells"][0]
        work = cell["work"]
        assert all(isinstance(v, int) for v in work.values())
        assert "candidates_checked" in work
        assert "extensions" in work
        assert "reads_mapped" in work
        # The default cascade ran: per-stage counters are present.
        assert any(k.startswith("filter_") for k in work)
        # The bitvector backend exposes kernel dedupe counters.
        assert "kernel_windows_requested" in work
        assert cell["wall"]["elapsed_s"] > 0


class TestDeterminism:
    def test_rerun_work_metrics_are_identical(self, tiny_result):
        again = run_matrix(tiny_spec(), profile_overrides=TINY_OVERRIDES)

        def strip(result):
            return [
                (cell_key(c), c["work"])
                for c in result["payload"]["cells"]
            ]

        assert strip(again) == strip(tiny_result)
        assert (
            again["workload_fingerprint"]
            == tiny_result["workload_fingerprint"]
        )

    def test_different_workload_changes_fingerprint(self, tiny_result):
        other = run_matrix(
            tiny_spec(),
            profile_overrides={"repeat-rich": {"repeat_copies": 13,
                                              "reads": 4}},
        )
        assert (
            other["workload_fingerprint"]
            != tiny_result["workload_fingerprint"]
        )


class TestValidationAndGuard:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_matrix(
                MatrixSpec(("warp-drive",), (1,), ("repeat-rich",), True)
            )

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            MatrixSpec(("bitvector",), (0,), ("repeat-rich",), True).validate()

    def test_out_path_must_be_results_bench(self, tmp_path):
        with pytest.raises(ValueError, match="results/bench"):
            run_matrix(
                tiny_spec(),
                tmp_path / "BENCH_matrix.json",
                profile_overrides=TINY_OVERRIDES,
            )

    def test_writes_under_results_bench(self, tmp_path):
        out = tmp_path / "results" / "bench" / "BENCH_matrix.json"
        result = run_matrix(
            tiny_spec(), out, profile_overrides=TINY_OVERRIDES
        )
        assert out.exists()
        from repro.perf.schema import load_bench

        assert load_bench(out) == result

    def test_trace_out_writes_chrome_trace(self, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        run_matrix(
            tiny_spec(), profile_overrides=TINY_OVERRIDES, trace_out=trace
        )
        doc = json.loads(trace.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert "perf_matrix_pass" in names


class TestDefaultSpec:
    def test_quick_default_sweeps_jobs_1(self):
        spec = MatrixSpec.default(quick=True)
        assert spec.jobs == (1,)
        assert "genax" in spec.backends
        assert "repeat-rich" in spec.profiles

    def test_full_default_sweeps_worker_counts(self):
        assert MatrixSpec.default(quick=False).jobs == (1, 2, 4)
