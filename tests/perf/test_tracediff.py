"""Trace diff: two Chrome traces -> the per-span before/after table."""

import json

import pytest

from repro.perf.tracediff import (
    SpanDelta,
    diff_traces,
    load_trace_spans,
    render_trace_diff,
)
from repro.telemetry.spans import SpanStat


def chrome_trace(events):
    """Build a traceEvents doc from (ph, name, ts_us, pid) rows."""
    return {
        "traceEvents": [
            {"ph": ph, "name": name, "ts": ts, "pid": pid, "tid": pid,
             "cat": "pipeline"}
            for ph, name, ts, pid in events
        ]
    }


def write_trace(path, events):
    path.write_text(json.dumps(chrome_trace(events)))
    return path


BEFORE_EVENTS = [
    ("B", "align", 0, 0),
    ("B", "seed", 10, 0),
    ("E", "seed", 110, 0),
    ("B", "extend", 120, 0),
    ("E", "extend", 920, 0),
    ("E", "align", 1000, 0),
]

# extend got 400us slower, seed unchanged, a new span appeared.
AFTER_EVENTS = [
    ("B", "align", 0, 0),
    ("B", "seed", 10, 0),
    ("E", "seed", 110, 0),
    ("B", "extend", 120, 0),
    ("E", "extend", 1320, 0),
    ("B", "select", 1330, 0),
    ("E", "select", 1380, 0),
    ("E", "align", 1400, 0),
]


class TestLoad:
    def test_loads_and_aggregates(self, tmp_path):
        path = write_trace(tmp_path / "trace.json", BEFORE_EVENTS)
        spans = load_trace_spans(path)
        assert spans["seed"].count == 1
        assert spans["seed"].total_s == pytest.approx(100e-6)
        # align's self-time excludes its nested children.
        assert spans["align"].self_s == pytest.approx(100e-6)

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"spans": []}))
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace_spans(path)


class TestDiff:
    def test_rows_sorted_by_self_delta_magnitude(self, tmp_path):
        before = load_trace_spans(
            write_trace(tmp_path / "before.json", BEFORE_EVENTS)
        )
        after = load_trace_spans(
            write_trace(tmp_path / "after.json", AFTER_EVENTS)
        )
        deltas = diff_traces(before, after)
        assert deltas[0].name == "extend"
        assert deltas[0].self_delta_s == pytest.approx(400e-6)

    def test_one_sided_spans_render_with_placeholders(self):
        deltas = diff_traces(
            {}, {"select": SpanStat("select", count=2, total_s=0.5,
                                    self_s=0.5)}
        )
        table = render_trace_diff("a.json", "b.json", deltas)
        row = next(l for l in table.splitlines() if l.startswith("select"))
        assert "-/2" in row
        assert "-/0.5000" in row

    def test_delta_includes_percentage_against_before(self, tmp_path):
        before = load_trace_spans(
            write_trace(tmp_path / "before.json", BEFORE_EVENTS)
        )
        after = load_trace_spans(
            write_trace(tmp_path / "after.json", AFTER_EVENTS)
        )
        table = render_trace_diff("before", "after", diff_traces(before, after))
        extend_row = next(
            l for l in table.splitlines() if l.startswith("extend")
        )
        assert "+50.0%" in extend_row  # 800us -> 1200us

    def test_empty_diff_renders_note(self):
        table = render_trace_diff("a", "b", [])
        assert "no spans" in table


class TestSpanDelta:
    def test_deltas_default_missing_sides_to_zero(self):
        stat = SpanStat("x", count=1, total_s=2.0, self_s=1.5)
        assert SpanDelta("x", None, stat).self_delta_s == 1.5
        assert SpanDelta("x", stat, None).total_delta_s == -2.0
