"""Tests for repro.align.bitvector (batched NumPy bit-parallel kernels).

The contract under test: every batched kernel equals its scalar
reference (``myers_distance`` / ``myers_bounded`` /
``myers_semiglobal_min``) element-wise over ragged batches, including
empty lanes and pattern lengths that straddle the 64-bit word boundary.
The hypothesis properties run under the suite-wide derandomized
profile (tests/conftest.py), so every machine draws the same examples.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.bitvector import (
    batch_myers_bounded,
    batch_myers_distance,
    batch_semiglobal_min,
)
from repro.align.myers import myers_bounded, myers_distance, myers_semiglobal_min
from repro.genome.sequence import random_dna

dna = st.text(alphabet="ACGT", max_size=90)
lanes = st.lists(st.tuples(dna, dna), max_size=12)


def ragged_batch(seed, count=48, max_len=200):
    """Random ragged lanes spanning 0..max_len, crossing word boundaries."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        pairs.append(
            (random_dna(rng.randrange(0, max_len), rng),
             random_dna(rng.randrange(0, max_len), rng))
        )
    # Pin the interesting boundary lengths explicitly.
    for n in (63, 64, 65, 127, 128, 129):
        pairs.append((random_dna(n, rng), random_dna(n + 3, rng)))
    pairs.extend([("", "ACGT"), ("ACGT", ""), ("", "")])
    return pairs


class TestBatchDistance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_myers(self, seed):
        pairs = ragged_batch(seed)
        scores = batch_myers_distance(
            [p for p, _ in pairs], [t for _, t in pairs]
        )
        assert [int(s) for s in scores] == [
            myers_distance(p, t) for p, t in pairs
        ]

    @given(lanes)
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar_myers(self, pairs):
        scores = batch_myers_distance(
            [p for p, _ in pairs], [t for _, t in pairs]
        )
        assert [int(s) for s in scores] == [
            myers_distance(p, t) for p, t in pairs
        ]

    def test_empty_batch(self):
        assert list(batch_myers_distance([], [])) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batch_myers_distance(["A"], [])


class TestBatchBounded:
    @pytest.mark.parametrize("k", [0, 1, 4, 12])
    def test_matches_scalar_bounded(self, k):
        pairs = ragged_batch(seed=k + 10)
        got = batch_myers_bounded(
            [p for p, _ in pairs], [t for _, t in pairs], k
        )
        assert got == [myers_bounded(p, t, k) for p, t in pairs]

    @given(lanes, st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar_bounded(self, pairs, k):
        got = batch_myers_bounded(
            [p for p, _ in pairs], [t for _, t in pairs], k
        )
        assert got == [myers_bounded(p, t, k) for p, t in pairs]


class TestBatchSemiglobal:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_matches_scalar_semiglobal(self, seed):
        pairs = ragged_batch(seed)
        scores = batch_semiglobal_min(
            [p for p, _ in pairs], [t for _, t in pairs]
        )
        assert [int(s) for s in scores] == [
            myers_semiglobal_min(p, t) for p, t in pairs
        ]

    @given(lanes)
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar_semiglobal(self, pairs):
        scores = batch_semiglobal_min(
            [p for p, _ in pairs], [t for _, t in pairs]
        )
        assert [int(s) for s in scores] == [
            myers_semiglobal_min(p, t) for p, t in pairs
        ]

    def test_substring_scores_zero(self):
        reference = random_dna(300, random.Random(7))
        window = reference[100:180]
        scores = batch_semiglobal_min([window], [reference])
        assert int(scores[0]) == 0
