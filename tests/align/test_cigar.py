"""Tests for repro.align.cigar."""

import pytest
from hypothesis import given, strategies as st

from repro.align.cigar import Cigar, trace_from_pairs
from repro.align.scoring import BWA_MEM_SCHEME


class TestConstruction:
    def test_from_ops_merges_adjacent(self):
        cigar = Cigar.from_ops([(2, "="), (3, "="), (1, "X")])
        assert str(cigar) == "5=1X"

    def test_from_ops_drops_zero_runs(self):
        assert str(Cigar.from_ops([(0, "="), (2, "I")])) == "2I"

    def test_from_ops_rejects_negative(self):
        with pytest.raises(ValueError):
            Cigar.from_ops([(-1, "=")])

    def test_from_ops_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Cigar.from_ops([(1, "Q")])

    def test_from_string(self):
        cigar = Cigar.from_string("10=2X3I4D5S")
        assert cigar.ops == ((10, "="), (2, "X"), (3, "I"), (4, "D"), (5, "S"))

    def test_from_string_empty(self):
        assert Cigar.from_string("").ops == ()

    def test_from_string_malformed(self):
        with pytest.raises(ValueError):
            Cigar.from_string("10=junk")

    def test_from_string_missing_count(self):
        with pytest.raises(ValueError):
            Cigar.from_string("=X")

    def test_from_edit_trace(self):
        assert str(Cigar.from_edit_trace("==XI=")) == "2=1X1I1="

    def test_roundtrip(self):
        text = "5=1X3I2D10="
        assert str(Cigar.from_string(text)) == text


class TestLengths:
    def test_query_length_counts_clips(self):
        cigar = Cigar.from_string("5=2I3S")
        assert cigar.query_length == 10

    def test_reference_length(self):
        cigar = Cigar.from_string("5=2I3D")
        assert cigar.reference_length == 8

    def test_aligned_query_excludes_clips(self):
        cigar = Cigar.from_string("5=2I3S")
        assert cigar.aligned_query_length == 7

    def test_edit_count(self):
        cigar = Cigar.from_string("10=2X3I4D")
        assert cigar.edit_count() == 9

    def test_count_single_op(self):
        cigar = Cigar.from_string("3I1=2I")
        assert cigar.count("I") == 5

    def test_expand(self):
        assert Cigar.from_string("2=1X").expand() == "==X"


class TestScore:
    def test_perfect_match(self):
        cigar = Cigar.from_string("4=")
        assert cigar.score("ACGT", "ACGT", BWA_MEM_SCHEME) == 4

    def test_substitution(self):
        cigar = Cigar.from_string("1=1X2=")
        assert cigar.score("ACGT", "AGGT", BWA_MEM_SCHEME) == 3 - 4

    def test_affine_gap_single_penalty_per_run(self):
        cigar = Cigar.from_string("2=3I2=")
        # One open (-6) + 3 extends (-3) + 4 matches.
        assert cigar.score("ACGT", "ACTTTGT", BWA_MEM_SCHEME) == 4 - 9

    def test_deletion(self):
        cigar = Cigar.from_string("2=2D2=")
        assert cigar.score("ACTTGT", "ACGT", BWA_MEM_SCHEME) == 4 - 8

    def test_soft_clip_skips_query(self):
        cigar = Cigar.from_string("4=2S")
        assert cigar.score("ACGT", "ACGTNN".replace("N", "A"), BWA_MEM_SCHEME) == 4

    def test_match_op_over_mismatch_rejected(self):
        cigar = Cigar.from_string("4=")
        with pytest.raises(ValueError):
            cigar.score("ACGT", "AGGT", BWA_MEM_SCHEME)

    def test_x_op_over_match_rejected(self):
        cigar = Cigar.from_string("1X3=")
        with pytest.raises(ValueError):
            cigar.score("ACGT", "ACGT", BWA_MEM_SCHEME)

    def test_overrun_rejected(self):
        cigar = Cigar.from_string("5=")
        with pytest.raises(ValueError):
            cigar.score("ACGT", "ACGT", BWA_MEM_SCHEME)

    def test_underrun_rejected(self):
        cigar = Cigar.from_string("3=")
        with pytest.raises(ValueError):
            cigar.score("ACGT", "ACGT", BWA_MEM_SCHEME)


class TestTraceFromPairs:
    def test_pure_matches(self):
        cigar = trace_from_pairs("ACG", "ACG", [(0, 0), (1, 1), (2, 2)])
        assert str(cigar) == "3="

    def test_gap_inference(self):
        # Reference jumps by 2 -> one deletion between pairs.
        cigar = trace_from_pairs("AXCG", "ACG", [(0, 0), (2, 1), (3, 2)])
        assert str(cigar) == "1=1D2="

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            trace_from_pairs("AC", "AC", [(1, 1), (0, 0)])


@given(st.lists(st.tuples(st.integers(1, 9), st.sampled_from("=XIDS")), max_size=12))
def test_string_roundtrip_property(ops):
    cigar = Cigar.from_ops(ops)
    assert Cigar.from_string(str(cigar)) == cigar


# --------------------------------------------------------------------------
# CIGAR invariants over *generated alignments*: whatever the aligners emit
# must consume exactly the query, exactly the reference span, and stay in
# canonical run-length form.

dna = st.text(alphabet="ACGT", min_size=0, max_size=24)


def _assert_alignment_invariants(alignment, reference, query):
    cigar = alignment.cigar
    assert cigar is not None
    # These aligners express clipping through query_start/query_end rather
    # than S ops, so consumed query (M/I/=/X) equals the aligned span and
    # span + implicit clips reconstructs the full read length.
    assert cigar.query_length == alignment.query_span
    clips = alignment.query_start + (len(query) - alignment.query_end)
    assert cigar.query_length + clips == len(query)
    # Consumed reference (M/D/=/X) equals the reported reference span.
    assert cigar.reference_length == alignment.reference_span
    assert 0 <= alignment.reference_start <= alignment.reference_end <= len(reference)
    # Canonical form: no adjacent runs of the same op, no zero-length runs.
    for (_, left), (_, right) in zip(cigar.ops, cigar.ops[1:]):
        assert left != right, f"adjacent {left!r} runs in {cigar}"
    assert all(length > 0 for length, _ in cigar.ops)
    # Format/parse round-trip is the identity on emitted alignments.
    assert Cigar.from_string(str(cigar)) == cigar


@given(dna, dna)
def test_extension_alignment_invariants(reference, query):
    from repro.align.smith_waterman import extension_align

    result = extension_align(reference, query)
    _assert_alignment_invariants(result.alignment, reference, query)


@given(dna, dna)
def test_local_alignment_invariants(reference, query):
    from repro.align.smith_waterman import local_align

    result = local_align(reference, query)
    _assert_alignment_invariants(result.alignment, reference, query)


@given(dna, dna, st.integers(1, 6))
def test_banded_alignment_invariants(reference, query, band):
    from repro.align.banded import banded_extension_align

    result = banded_extension_align(reference, query, band)
    _assert_alignment_invariants(result.alignment, reference, query)


@given(dna, dna)
def test_hirschberg_alignment_consumes_everything(reference, query):
    from repro.align.hirschberg import hirschberg_align

    result = hirschberg_align(reference, query)
    cigar = result.cigar
    # Global alignment: the trace consumes all of both sequences.
    assert cigar.query_length == len(query)
    assert cigar.reference_length == len(reference)
    for (_, left), (_, right) in zip(cigar.ops, cigar.ops[1:]):
        assert left != right, f"adjacent {left!r} runs in {cigar}"
    assert Cigar.from_string(str(cigar)) == cigar


# --------------------------------------------------------------------------
# Kilobase-scale indel-heavy alignments: the long-read profiles routinely
# emit 10 kbp+ reads whose CIGARs carry dozens of indel runs, so the
# consumed-query/consumed-reference invariants and canonical coalescing
# must hold at that scale too, not just on the 24 bp property inputs.


@pytest.fixture(scope="module")
def long_indel_alignment():
    import random

    from repro.align.banded import banded_extension_align
    from repro.genome.reference import make_reference

    reference = make_reference(12_000, seed=77)
    window = reference.sequence[500:11_000]
    rng = random.Random(17)
    out = list(window)
    for _ in range(40):
        position = rng.randrange(len(out))
        kind = rng.random()
        if kind < 0.4:
            out.insert(position, rng.choice("ACGT"))
        elif kind < 0.8:
            del out[position]
        else:
            out[position] = rng.choice("ACGT".replace(out[position], ""))
    query = "".join(out)
    assert len(query) > 10_000
    result = banded_extension_align(window, query, 64)
    return window, query, result.alignment


class TestLongIndelHeavyCigars:
    def test_alignment_invariants_at_scale(self, long_indel_alignment):
        window, query, alignment = long_indel_alignment
        _assert_alignment_invariants(alignment, window, query)

    def test_cigar_carries_indel_runs(self, long_indel_alignment):
        _, _, alignment = long_indel_alignment
        cigar = alignment.cigar
        assert cigar.count("I") + cigar.count("D") > 0
        # 40 injected 1-bp edits bound the trace's edit content (the
        # optimal alignment may merge or trade edits, never exceed them).
        assert 0 < cigar.edit_count() <= 40

    def test_cigar_rescores_to_reported_score(self, long_indel_alignment):
        window, query, alignment = long_indel_alignment
        cigar = alignment.cigar
        consumed_reference = window[
            alignment.reference_start : alignment.reference_end
        ]
        consumed_query = query[alignment.query_start : alignment.query_end]
        assert (
            cigar.score(consumed_reference, consumed_query, BWA_MEM_SCHEME)
            == alignment.score
        )

    def test_string_roundtrip_at_scale(self, long_indel_alignment):
        _, _, alignment = long_indel_alignment
        assert Cigar.from_string(str(alignment.cigar)) == alignment.cigar
