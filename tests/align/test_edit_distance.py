"""Tests for repro.align.edit_distance."""

import pytest
from hypothesis import given, strategies as st

from repro.align.edit_distance import (
    bounded_levenshtein,
    edit_distance_matrix,
    levenshtein,
)

dna = st.text(alphabet="ACGT", max_size=16)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("GATTACA", "GATTACA") == 0

    def test_substitution(self):
        assert levenshtein("AAAA", "AACA") == 1

    def test_insertion(self):
        assert levenshtein("ACGT", "ACGGT") == 1

    def test_deletion(self):
        assert levenshtein("ACGT", "AGT") == 1

    def test_empty_vs_string(self):
        assert levenshtein("", "ACGT") == 4
        assert levenshtein("ACGT", "") == 4

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_paper_figure3_example(self):
        # Fig. 3: "AxBCD" vs "yABCD" aligns with 2 edits.
        assert levenshtein("AXBCD", "YABCD") == 2

    @given(dna, dna)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(dna, dna)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestBoundedLevenshtein:
    def test_within_bound(self):
        assert bounded_levenshtein("ACGT", "ACCT", 2) == 1

    def test_exceeds_bound(self):
        assert bounded_levenshtein("AAAA", "TTTT", 2) is None

    def test_length_difference_short_circuit(self):
        assert bounded_levenshtein("A" * 10, "A", 3) is None

    def test_exact_bound(self):
        assert bounded_levenshtein("AAAA", "TTTT", 4) == 4

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            bounded_levenshtein("A", "A", -1)

    def test_k_zero(self):
        assert bounded_levenshtein("ACGT", "ACGT", 0) == 0
        assert bounded_levenshtein("ACGT", "ACGA", 0) is None

    @given(dna, dna, st.integers(0, 6))
    def test_agrees_with_full_dp(self, a, b, k):
        truth = levenshtein(a, b)
        expected = truth if truth <= k else None
        assert bounded_levenshtein(a, b, k) == expected


class TestMatrix:
    def test_shape(self):
        matrix = edit_distance_matrix("ACG", "AC")
        assert len(matrix) == 4 and len(matrix[0]) == 3

    def test_corner_is_distance(self):
        matrix = edit_distance_matrix("kitten", "sitting")
        assert matrix[-1][-1] == 3

    def test_first_row_and_column(self):
        matrix = edit_distance_matrix("ACG", "AC")
        assert [row[0] for row in matrix] == [0, 1, 2, 3]
        assert matrix[0] == [0, 1, 2]
