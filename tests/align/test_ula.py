"""Tests for repro.align.ula (Universal Levenshtein Automaton)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.align.ula import (
    UniversalLevenshteinAutomaton,
    characteristic_vector,
    reduce_positions,
)

dna = st.text(alphabet="ACGT", max_size=12)


class TestCharacteristicVector:
    def test_marks_occurrences(self):
        assert characteristic_vector("A", "ACAG", 0, 4) == (True, False, True, False)

    def test_window_offset(self):
        assert characteristic_vector("G", "ACAG", 2, 2) == (False, True)

    def test_pads_past_pattern_end(self):
        assert characteristic_vector("A", "AC", 1, 3) == (False, False, False)


class TestSubsumption:
    def test_lower_error_subsumes(self):
        reduced = reduce_positions({(3, 0), (3, 1)})
        assert reduced == frozenset({(3, 0)})

    def test_distant_positions_kept(self):
        reduced = reduce_positions({(0, 0), (5, 1)})
        assert reduced == frozenset({(0, 0), (5, 1)})

    def test_diagonal_subsumption(self):
        # (2,0) subsumes (3,1): |3-2| <= 1-0.
        assert reduce_positions({(2, 0), (3, 1)}) == frozenset({(2, 0)})


class TestULA:
    def test_exact(self):
        assert UniversalLevenshteinAutomaton(0).run("ACGT", "ACGT") == 0

    def test_substitution(self):
        assert UniversalLevenshteinAutomaton(1).run("ACGT", "AGGT") == 1

    def test_insertion_and_deletion(self):
        ula = UniversalLevenshteinAutomaton(2)
        assert ula.run("ACGT", "ACGGT") == 1
        assert ula.run("ACGT", "AGT") == 1

    def test_rejects_beyond_k(self):
        assert UniversalLevenshteinAutomaton(1).run("AAAA", "TTTT") is None

    def test_string_independence_one_instance_many_patterns(self):
        """The defining ULA property: one automaton serves every pattern."""
        ula = UniversalLevenshteinAutomaton(2)
        assert ula.run("ACGT", "ACGA") == 1
        assert ula.run("TTTTTT", "TTATTT") == 1
        assert ula.run("GATTACA", "GATTACA") == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            UniversalLevenshteinAutomaton(-1)

    def test_fanout_grows_with_k(self):
        """The paper's §II criticism: deletion fan-out is O(K)."""
        small = UniversalLevenshteinAutomaton(1)
        small.run("ACGTACGTAC", "ACAC")
        large = UniversalLevenshteinAutomaton(4)
        large.run("ACGTACGTAC", "ACAC")
        assert large.max_fanout > small.max_fanout

    @given(dna, dna, st.integers(0, 4))
    @settings(max_examples=80, deadline=None)
    def test_matches_dp(self, pattern, text, k):
        truth = levenshtein(pattern, text)
        expected = truth if truth <= k else None
        assert UniversalLevenshteinAutomaton(k).run(pattern, text) == expected
