"""Tests for repro.align.levenshtein_automaton (the §II baseline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.align.levenshtein_automaton import (
    LevenshteinAutomaton,
    la_stream_cost,
)

dna = st.text(alphabet="ACGT", max_size=12)


class TestAutomaton:
    def test_accepts_exact(self):
        assert LevenshteinAutomaton("ACGT", 0).accepts("ACGT")

    def test_rejects_beyond_k(self):
        assert not LevenshteinAutomaton("ACGT", 1).accepts("AGGA")

    def test_accepts_substitution(self):
        assert LevenshteinAutomaton("ACGT", 1).accepts("AGGT")

    def test_accepts_insertion(self):
        assert LevenshteinAutomaton("ACGT", 1).accepts("ACGGT")

    def test_accepts_deletion(self):
        assert LevenshteinAutomaton("ACGT", 1).accepts("AGT")

    def test_distance_value(self):
        assert LevenshteinAutomaton("ACGT", 2).distance("AGGA") == 2

    def test_distance_none_beyond_k(self):
        assert LevenshteinAutomaton("AAAA", 2).distance("TTTT") is None

    def test_empty_pattern(self):
        automaton = LevenshteinAutomaton("", 2)
        assert automaton.distance("AC") == 2
        assert automaton.distance("ACG") is None

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            LevenshteinAutomaton("A", -1)

    @given(dna, dna, st.integers(0, 4))
    @settings(max_examples=80, deadline=None)
    def test_matches_dp(self, pattern, text, k):
        truth = levenshtein(pattern, text)
        expected = truth if truth <= k else None
        assert LevenshteinAutomaton(pattern, k).distance(text) == expected


class TestPaperCriticisms:
    """The properties §II holds against LA, made measurable."""

    def test_state_count_scales_with_pattern_length(self):
        short = LevenshteinAutomaton("ACGT", 2)
        long = LevenshteinAutomaton("ACGT" * 25, 2)
        assert long.state_count == 25 * short.state_count - 24 * (2 + 1)
        assert long.state_count > 100  # O(K*N), not O(K^2)

    def test_construction_cost_proportional_to_states(self):
        automaton = LevenshteinAutomaton("ACGT" * 10, 3)
        assert automaton.construction_cost == automaton.state_count

    def test_stream_cost_dominated_by_reprogramming(self):
        """Seed extension = a different pattern per item (the §II argument)."""
        items = [("ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGA", 2)] * 20
        # Different pattern per item: reprogram every time.
        varied = [
            ("ACGTACGTACGTACGTACG" + base, text, k)
            for (____, text, k), base in zip(items, "ACGT" * 5)
        ]
        cost = la_stream_cost(varied)
        assert cost.pairs == 20
        assert cost.reprogram_states > 0
        # Reprogramming is a significant fraction of all work.
        assert cost.reprogram_states >= 0.2 * cost.total
