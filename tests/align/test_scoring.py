"""Tests for repro.align.scoring."""

import pytest

from repro.align.scoring import BWA_MEM_SCHEME, EDIT_DISTANCE_SCHEME, ScoringScheme


class TestScoringScheme:
    def test_bwa_mem_defaults_match_paper(self):
        # §IV-B: match +1, substitution -4, g_open -6, g_extend -1.
        assert BWA_MEM_SCHEME.match == 1
        assert BWA_MEM_SCHEME.substitution == -4
        assert BWA_MEM_SCHEME.gap_open == -6
        assert BWA_MEM_SCHEME.gap_extend == -1

    def test_affine_gap_formula(self):
        # G = g_open + g_extend * id  (§IV-B).
        assert BWA_MEM_SCHEME.gap(1) == -7
        assert BWA_MEM_SCHEME.gap(5) == -11

    def test_gap_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            BWA_MEM_SCHEME.gap(0)

    def test_compare(self):
        assert BWA_MEM_SCHEME.compare("A", "A") == 1
        assert BWA_MEM_SCHEME.compare("A", "C") == -4

    def test_invalid_match_score(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)

    def test_invalid_substitution(self):
        with pytest.raises(ValueError):
            ScoringScheme(substitution=1)

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_extend=0)

    def test_edit_scheme_unit_costs(self):
        assert EDIT_DISTANCE_SCHEME.gap(3) == -3
        assert EDIT_DISTANCE_SCHEME.compare("A", "C") == -1


class TestEditBoundDerivation:
    def test_paper_operating_point(self):
        """§VIII-A: score > 30 on 101 bp reads bounds the edit distance.

        The paper's empirical estimate is < 32 (K = 40 conservative); the
        strict worst case (pure-deletion alignments) is higher — the strict
        bound must cover the paper's estimate.
        """
        bound = BWA_MEM_SCHEME.max_edits_for_score(101, 30)
        assert bound == 65  # (101 - 30 - 6) // 1
        assert bound >= 32

    def test_perfect_score_leaves_no_edit_budget(self):
        assert BWA_MEM_SCHEME.max_edits_for_score(101, 101) == 0

    def test_bound_grows_with_laxer_score(self):
        strict = BWA_MEM_SCHEME.max_edits_for_score(101, 60)
        lax = BWA_MEM_SCHEME.max_edits_for_score(101, 10)
        assert lax > strict

    def test_impossible_score(self):
        assert BWA_MEM_SCHEME.max_edits_for_score(10, 100) == 0
