"""Tests for repro.align.smith_waterman (full Gotoh DP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.scoring import BWA_MEM_SCHEME, ScoringScheme
from repro.align.smith_waterman import (
    extension_align,
    extension_score_matrix,
    global_score,
    local_align,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=14)


class TestLocalAlign:
    def test_identical_strings(self):
        result = local_align("ACGTACGT", "ACGTACGT")
        assert result.alignment.score == 8
        assert str(result.alignment.cigar) == "8="

    def test_finds_embedded_match(self):
        result = local_align("TTTTACGTACGTTTTT", "ACGTACGT")
        a = result.alignment
        assert a.score == 8
        assert a.reference_start == 4
        assert a.reference_end == 12

    def test_local_clips_mismatching_ends(self):
        result = local_align("GGGGACGTGGGG", "TTACGTTT")
        assert result.alignment.score == 4  # just the ACGT core

    def test_substitution_included_when_profitable(self):
        # Long match - one substitution - long match beats clipping.
        ref = "ACGTACGTAC" + "G" + "ACGTACGTAC"
        qry = "ACGTACGTAC" + "T" + "ACGTACGTAC"
        result = local_align(ref, qry)
        assert result.alignment.score == 20 - 4
        assert result.alignment.cigar.count("X") == 1

    def test_affine_gap_preferred_over_clipping(self):
        ref = "A" * 10 + "CC" + "T" * 10
        qry = "A" * 10 + "T" * 10
        result = local_align(ref, qry)
        # One 2-base deletion gap: 20 matches - (6 + 2).
        assert result.alignment.cigar.count("D") == 2
        assert result.alignment.score == 20 - 8

    def test_score_never_negative(self):
        result = local_align("AAAA", "TTTT")
        assert result.alignment.score == 0

    def test_cells_counted(self):
        result = local_align("ACGT", "ACG")
        assert result.cells_computed == 12

    def test_cigar_rescores_to_reported_score(self):
        ref, qry = "ACGTTTACGGACGT", "ACGTACGTACGT"
        result = local_align(ref, qry)
        a = result.alignment
        rescored = a.cigar.score(
            ref[a.reference_start : a.reference_end],
            qry[a.query_start : a.query_end],
            BWA_MEM_SCHEME,
        )
        assert rescored == a.score


class TestExtensionAlign:
    def test_anchored_at_origin(self):
        result = extension_align("ACGT", "ACGT")
        assert result.alignment.reference_start == 0
        assert result.alignment.query_start == 0

    def test_clips_bad_tail(self):
        # Good prefix then garbage: clipping keeps the prefix only.
        result = extension_align("ACGTACGT" + "AAAA", "ACGTACGT" + "TTTT")
        assert result.alignment.score == 8
        assert result.alignment.query_end == 8

    def test_full_alignment_when_profitable(self):
        result = extension_align("ACGTACGT", "ACGAACGT")
        assert result.alignment.score == 7 - 4

    def test_extension_score_ge_zero(self):
        result = extension_align("TTTT", "AAAA")
        assert result.alignment.score == 0

    def test_matrix_corner_is_global_score(self):
        ref, qry = "ACGTAC", "ACTTAC"
        matrix = extension_score_matrix(ref, qry)
        assert matrix[len(ref)][len(qry)] == global_score(ref, qry)

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_extension_at_least_local_minus_anchoring(self, ref, qry):
        # The extension best is the max prefix-pair score; it can never
        # exceed the local (unanchored) optimum.
        ext = extension_align(ref, qry).alignment.score
        loc = local_align(ref, qry).alignment.score
        assert ext <= loc

    @given(dna)
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_is_perfect(self, s):
        result = extension_align(s, s)
        assert result.alignment.score == len(s)
        assert str(result.alignment.cigar) == f"{len(s)}="


class TestGlobalScore:
    def test_equal_strings(self):
        assert global_score("ACGT", "ACGT") == 4

    def test_single_substitution(self):
        assert global_score("ACGT", "AGGT") == 3 - 4

    def test_pure_gap(self):
        assert global_score("ACGT", "") == -10  # open -6, 4 extends

    def test_custom_scheme(self):
        scheme = ScoringScheme(match=2, substitution=-1, gap_open=-2, gap_extend=-1)
        assert global_score("ACGT", "ACGT", scheme) == 8
