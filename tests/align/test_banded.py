"""Tests for repro.align.banded."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.banded import banded_extension_align, banded_extension_score
from repro.align.scoring import BWA_MEM_SCHEME
from repro.align.smith_waterman import extension_align

dna = st.text(alphabet="ACGT", min_size=1, max_size=14)


class TestBandedExtension:
    def test_identical_strings(self):
        result = banded_extension_align("ACGTACGT", "ACGTACGT", band=2)
        assert result.alignment.score == 8

    def test_matches_full_dp_when_band_covers_grid(self):
        ref, qry = "ACGTTGCA", "ACGATGCA"
        wide = banded_extension_align(ref, qry, band=10)
        full = extension_align(ref, qry)
        assert wide.alignment.score == full.alignment.score

    def test_band_restricts_indels(self):
        # The alignment needs a 3-base deletion; band=1 cannot express it,
        # so the narrow band is stuck with the clipped 6-base prefix.
        ref = "A" * 6 + "CCC" + "T" * 12
        qry = "A" * 6 + "T" * 12
        narrow = banded_extension_align(ref, qry, band=1)
        wide = banded_extension_align(ref, qry, band=4)
        assert narrow.alignment.score == 6
        assert wide.alignment.score == 18 - 9
        assert wide.alignment.score > narrow.alignment.score

    def test_cell_count_is_linear_in_band(self):
        ref = qry = "ACGT" * 25
        narrow = banded_extension_align(ref, qry, band=2)
        wide = banded_extension_align(ref, qry, band=10)
        assert narrow.cells_computed < wide.cells_computed
        # ~ (2K+1) * N cells.
        assert narrow.cells_computed <= 5 * len(ref)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_extension_align("AC", "AC", band=-1)

    def test_cigar_rescores(self):
        ref, qry = "ACGTAACGGTACGT", "ACGTACGGTACGA"
        result = banded_extension_align(ref, qry, band=5)
        a = result.alignment
        rescored = a.cigar.score(
            ref[: a.reference_end], qry[: a.query_end], BWA_MEM_SCHEME
        )
        assert rescored == a.score

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_wide_band_equals_full_dp(self, ref, qry):
        band = len(ref) + len(qry) + 1
        banded = banded_extension_align(ref, qry, band=band)
        full = extension_align(ref, qry)
        assert banded.alignment.score == full.alignment.score

    @given(dna, dna, st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_banded_never_exceeds_full_dp(self, ref, qry, band):
        banded = banded_extension_align(ref, qry, band=band)
        full = extension_align(ref, qry)
        assert banded.alignment.score <= full.alignment.score


class TestScoreOnly:
    def test_agrees_with_traceback_variant(self):
        ref, qry = "ACGTAACGGTACGT", "ACGTACGGTACGA"
        for band in (1, 3, 8):
            score, __ = banded_extension_score(ref, qry, band)
            full = banded_extension_align(ref, qry, band)
            assert score == full.alignment.score

    @given(dna, dna, st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_agreement_property(self, ref, qry, band):
        score, __ = banded_extension_score(ref, qry, band)
        assert score == banded_extension_align(ref, qry, band).alignment.score

    def test_counts_cells(self):
        __, cells = banded_extension_score("ACGT" * 10, "ACGT" * 10, 3)
        assert 0 < cells <= 7 * 40
