"""Tests for repro.align.hirschberg and repro.align.xdrop."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.hirschberg import (
    LinearScoring,
    hirschberg_align,
    nw_global_align,
)
from repro.align.smith_waterman import extension_align
from repro.align.xdrop import xdrop_extension_score

dna = st.text(alphabet="ACGT", min_size=1, max_size=16)


class TestHirschberg:
    def test_identical_strings(self):
        result = hirschberg_align("ACGTACGT", "ACGTACGT")
        assert result.score == 8
        assert str(result.cigar) == "8="

    def test_single_substitution(self):
        result = hirschberg_align("ACGT", "AGGT")
        assert result.score == 3 - 1
        assert result.cigar.count("X") == 1

    def test_gap(self):
        result = hirschberg_align("ACGT", "AGT")
        assert result.cigar.count("D") == 1
        assert result.score == 3 - 1

    def test_empty_query(self):
        result = hirschberg_align("ACGT", "A")
        assert result.cigar.count("D") == 3

    def test_cigar_consumes_both_strings(self):
        ref, qry = "ACGTACGTAC", "ACTTACGAC"
        result = hirschberg_align(ref, qry)
        assert result.cigar.reference_length == len(ref)
        assert result.cigar.aligned_query_length == len(qry)

    def test_linear_space_claim(self):
        result = hirschberg_align("ACGT" * 20, "ACGT" * 20)
        assert result.peak_rows == 2
        full = nw_global_align("ACGT" * 20, "ACGT" * 20)
        assert full.peak_rows == 81

    def test_recompute_overhead_about_2x(self):
        """§VIII-C: linear space costs extra time (recomputation)."""
        ref = "ACGTAGGTAC" * 8
        qry = "ACGTACGTAC" * 8
        linear = hirschberg_align(ref, qry)
        full = nw_global_align(ref, qry)
        assert full.cells_computed < linear.cells_computed <= 3 * full.cells_computed

    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_optimal_score_matches_full_nw(self, ref, qry):
        assert hirschberg_align(ref, qry).score == nw_global_align(ref, qry).score

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_cigar_valid(self, ref, qry):
        result = hirschberg_align(ref, qry)
        assert result.cigar.reference_length == len(ref)
        assert result.cigar.aligned_query_length == len(qry)

    def test_custom_scoring(self):
        scoring = LinearScoring(match=2, mismatch=-3, gap=-2)
        result = hirschberg_align("ACGT", "ACGT", scoring)
        assert result.score == 8


class TestXDrop:
    def test_identical_strings(self):
        result = xdrop_extension_score("ACGTACGT", "ACGTACGT", x_drop=10)
        assert result.score == 8
        assert not result.terminated_early

    def test_generous_x_matches_exact_dp(self):
        ref, qry = "ACGTAACGGTACGT", "ACGTACGGTACGA"
        exact = extension_align(ref, qry).alignment.score
        result = xdrop_extension_score(ref, qry, x_drop=1000)
        assert result.score == exact

    def test_tight_x_computes_fewer_cells(self):
        ref = "ACGTACGT" + "TTTTTTTT" + "ACGTACGT"
        qry = "ACGTACGT" + "AAAAAAAA" + "ACGTACGT"
        loose = xdrop_extension_score(ref, qry, x_drop=1000)
        tight = xdrop_extension_score(ref, qry, x_drop=5)
        assert tight.cells_computed < loose.cells_computed

    def test_tight_x_can_miss_the_optimum(self):
        """The heuristic's defining failure: a dip deeper than X hides a
        better alignment beyond it (why GenAx avoids heuristics, §I)."""
        ref = "ACGTACGT" + "TTTT" + "ACGTACGTACGTACGT"
        qry = "ACGTACGT" + "AAAA" + "ACGTACGTACGTACGT"
        exact = xdrop_extension_score(ref, qry, x_drop=10_000)
        tight = xdrop_extension_score(ref, qry, x_drop=2)
        assert tight.terminated_early
        assert tight.score < exact.score

    def test_never_exceeds_exact(self):
        import random

        rng = random.Random(9)
        for __ in range(20):
            ref = "".join(rng.choice("ACGT") for _ in range(20))
            qry = "".join(rng.choice("ACGT") for _ in range(20))
            exact = extension_align(ref, qry).alignment.score
            for x in (0, 3, 10):
                assert xdrop_extension_score(ref, qry, x).score <= exact

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_huge_x_equals_exact_property(self, ref, qry):
        exact = extension_align(ref, qry).alignment.score
        assert xdrop_extension_score(ref, qry, 10**6).score == exact

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError):
            xdrop_extension_score("A", "A", -1)
