"""Tests for repro.align.records."""

import pytest

from repro.align.cigar import Cigar
from repro.align.records import Alignment, AlignmentStats, MappedRead


class TestAlignment:
    def test_spans(self):
        a = Alignment(score=5, reference_start=10, reference_end=20, query_start=0, query_end=9)
        assert a.reference_span == 10
        assert a.query_span == 9

    def test_inverted_reference_rejected(self):
        with pytest.raises(ValueError):
            Alignment(score=0, reference_start=5, reference_end=4, query_start=0, query_end=0)

    def test_inverted_query_rejected(self):
        with pytest.raises(ValueError):
            Alignment(score=0, reference_start=0, reference_end=0, query_start=3, query_end=1)

    def test_carries_cigar(self):
        cigar = Cigar.from_string("4=")
        a = Alignment(score=4, reference_start=0, reference_end=4, query_start=0, query_end=4, cigar=cigar)
        assert str(a.cigar) == "4="


class TestMappedRead:
    def test_unmapped_flag(self):
        assert MappedRead("r", position=-1, reverse=False, score=0).is_unmapped

    def test_mapped(self):
        assert not MappedRead("r", position=100, reverse=True, score=90).is_unmapped


class TestStats:
    def test_merge(self):
        a = AlignmentStats(reads_total=5, reads_mapped=4, dp_cells=100)
        b = AlignmentStats(reads_total=2, reads_mapped=2, dp_cells=50, cycles=7)
        a.merge(b)
        assert a.reads_total == 7
        assert a.reads_mapped == 6
        assert a.dp_cells == 150
        assert a.cycles == 7

    def test_defaults_zero(self):
        stats = AlignmentStats()
        assert stats.reads_total == 0 and stats.extensions == 0
