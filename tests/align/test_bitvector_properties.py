"""Arbitrary-precision cross-check of the sanctioned carry-ripple step.

``repro.align.bitvector._ripple_add`` is the one place the kernel
*depends on* uint64 wrapping: ``X = ((EQ & VP) + VP) ^ VP | EQ`` computed
word-by-word with the carry recovered from overflow comparisons (Hyyro's
blocked Myers formulation).  GX501 sanctions that site via the allowlist;
this property test is the other half of the bargain — it recomputes the
same step in Python big ints, where ``+`` cannot wrap, and asserts the
low 64 bits of every word agree exactly.  If NumPy dtype promotion, the
overflow comparisons, or the cross-word carry chain ever drift, the
mismatch shows up here before it corrupts an alignment score.

Runs under the suite-wide derandomized hypothesis profile
(tests/conftest.py), so every machine draws the same examples.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.align.bitvector import BITS_PER_WORD, _ripple_add

WORD_MASK = (1 << BITS_PER_WORD) - 1

uint64_words = st.integers(min_value=0, max_value=WORD_MASK)


def to_big(row):
    """Little-endian uint64 words -> one Python big int."""
    value = 0
    for index, word in enumerate(row):
        value |= int(word) << (BITS_PER_WORD * index)
    return value


def from_big(value, words):
    """Python big int -> little-endian uint64 word list (low `words`)."""
    return [
        (value >> (BITS_PER_WORD * index)) & WORD_MASK
        for index in range(words)
    ]


def reference_ripple(eq_big, vp_big, words):
    """The Myers X-term in unbounded integers, truncated to the column.

    ``(EQ & VP) + VP`` is a plain big-int addition — carries propagate
    across word boundaries for free — then the xor/or and the final mask
    to the column width (the kernel's words hold exactly that many bits).
    """
    column_mask = (1 << (BITS_PER_WORD * words)) - 1
    x = (((eq_big & vp_big) + vp_big) & column_mask) ^ vp_big | eq_big
    return x & column_mask


def lanes_strategy(max_words=4, max_lanes=6):
    return st.integers(min_value=1, max_value=max_words).flatmap(
        lambda words: st.lists(
            st.tuples(
                st.lists(uint64_words, min_size=words, max_size=words),
                st.lists(uint64_words, min_size=words, max_size=words),
            ),
            min_size=1,
            max_size=max_lanes,
        )
    )


class TestRippleAddCrossCheck:
    @given(lanes_strategy())
    @settings(max_examples=200, deadline=None)
    def test_matches_arbitrary_precision_reference(self, lanes):
        eq = np.array([pair[0] for pair in lanes], dtype=np.uint64)
        vp = np.array([pair[1] for pair in lanes], dtype=np.uint64)
        xh = _ripple_add(eq, vp)
        words = eq.shape[1]
        for lane in range(len(lanes)):
            expected = reference_ripple(
                to_big(eq[lane]), to_big(vp[lane]), words
            )
            assert [int(w) for w in xh[lane]] == from_big(expected, words), (
                f"lane {lane}: eq={list(map(int, eq[lane]))} "
                f"vp={list(map(int, vp[lane]))}"
            )

    def test_carry_crosses_word_boundary(self):
        # eq = vp = all-ones in the low word: (eq & vp) + vp overflows and
        # the carry must ripple into the high word.
        eq = np.array([[WORD_MASK, 0]], dtype=np.uint64)
        vp = np.array([[WORD_MASK, 1]], dtype=np.uint64)
        xh = _ripple_add(eq, vp)
        expected = reference_ripple(to_big(eq[0]), to_big(vp[0]), 2)
        assert [int(w) for w in xh[0]] == from_big(expected, 2)

    def test_carry_chain_through_saturated_middle_word(self):
        # A saturated middle word propagates the incoming carry onward:
        # the worst case for the two-comparison overflow recovery.
        eq = np.array([[WORD_MASK, WORD_MASK, 0]], dtype=np.uint64)
        vp = np.array([[WORD_MASK, WORD_MASK, 5]], dtype=np.uint64)
        xh = _ripple_add(eq, vp)
        expected = reference_ripple(to_big(eq[0]), to_big(vp[0]), 3)
        assert [int(w) for w in xh[0]] == from_big(expected, 3)

    def test_zero_inputs(self):
        eq = np.zeros((2, 2), dtype=np.uint64)
        vp = np.zeros((2, 2), dtype=np.uint64)
        assert _ripple_add(eq, vp).tolist() == [[0, 0], [0, 0]]
