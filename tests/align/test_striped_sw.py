"""Tests for repro.align.striped_sw (Farrar's SIMD formulation [14])."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.smith_waterman import local_align
from repro.align.striped_sw import striped_local_score

dna = st.text(alphabet="ACGT", min_size=1, max_size=20)


class TestStripedSW:
    def test_identical_strings(self):
        assert striped_local_score("ACGTACGT", "ACGTACGT").score == 8

    def test_embedded_match(self):
        assert striped_local_score("TTTTACGTACGTTTTT", "ACGTACGT").score == 8

    def test_empty_inputs(self):
        assert striped_local_score("", "ACGT").score == 0
        assert striped_local_score("ACGT", "").score == 0

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            striped_local_score("A", "A", lanes=0)

    def test_lane_count_does_not_change_score(self):
        rng = random.Random(7)
        ref = "".join(rng.choice("ACGT") for _ in range(60))
        qry = "".join(rng.choice("ACGT") for _ in range(50))
        scores = {
            striped_local_score(ref, qry, lanes=lanes).score
            for lanes in (1, 3, 8, 16, 64)
        }
        assert len(scores) == 1

    def test_gap_crossing_stripes_triggers_lazy_f(self):
        """A long vertical gap forces the lazy-F correction passes."""
        ref = "ACGTACGTACGTACGTACGT"
        qry = ref[:8] + "TTTTTTTTTT" + ref[8:]
        result = striped_local_score(ref, qry, lanes=4)
        assert result.lazy_f_passes > 0
        assert result.score == local_align(ref, qry).alignment.score

    def test_vector_ops_counted(self):
        result = striped_local_score("ACGT" * 10, "ACGT" * 10, lanes=8)
        assert result.vector_ops > 0

    @given(dna, dna, st.sampled_from([1, 2, 8, 16]))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_gotoh(self, ref, qry, lanes):
        striped = striped_local_score(ref, qry, lanes=lanes).score
        scalar = local_align(ref, qry).alignment.score
        assert striped == scalar

    def test_simd_work_scales_with_nm_over_lanes(self):
        """The §II point: striping speeds SW up but stays O(N*M)."""
        short = striped_local_score("ACGT" * 10, "ACGT" * 10, lanes=16)
        long = striped_local_score("ACGT" * 40, "ACGT" * 40, lanes=16)
        assert long.vector_ops > 3 * short.vector_ops
