"""Tests for repro.align.systolic_sw (the wavefront hardware baseline)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.banded import banded_extension_score
from repro.align.systolic_sw import SystolicBandedSW

dna = st.text(alphabet="ACGT", max_size=14)


class TestSystolicSW:
    def test_identical_strings(self):
        result = SystolicBandedSW(band=2).run("ACGTACGT", "ACGTACGT")
        assert result.best_score == 8

    def test_pe_count_is_2k_plus_1(self):
        assert SystolicBandedSW(band=5).pe_count == 11
        assert SystolicBandedSW(band=0).pe_count == 1

    def test_cycles_linear_in_length(self):
        short = SystolicBandedSW(band=3).run("ACGT" * 5, "ACGT" * 5)
        long = SystolicBandedSW(band=3).run("ACGT" * 20, "ACGT" * 20)
        assert long.cycles == pytest.approx(4 * short.cycles, rel=0.1)

    def test_traceback_storage_scales_with_kn(self):
        """§VIII-C: hardware banded SW needs O(K*N) traceback memory."""
        small = SystolicBandedSW(band=4).run("ACGT" * 10, "ACGT" * 10)
        large = SystolicBandedSW(band=4).run("ACGT" * 40, "ACGT" * 40)
        assert large.traceback_bits > 3 * small.traceback_bits
        assert small.traceback_bits == 4 * small.pe_updates

    def test_occupancy_at_most_half(self):
        # A PE fires on alternating anti-diagonals: occupancy <= ~50%.
        result = SystolicBandedSW(band=4).run("ACGT" * 10, "ACGT" * 10)
        assert 0 < result.pe_occupancy <= 0.55

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            SystolicBandedSW(band=-1)

    def test_empty_inputs(self):
        result = SystolicBandedSW(band=2).run("", "")
        assert result.best_score == 0
        assert result.cycles == 0

    @given(dna, dna, st.integers(0, 6))
    @settings(max_examples=100, deadline=None)
    def test_matches_software_banded_dp(self, ref, qry, band):
        hardware = SystolicBandedSW(band).best_score(ref, qry)
        software, __ = banded_extension_score(ref, qry, band)
        assert hardware == software

    def test_random_mutated_reads(self):
        rng = random.Random(3)
        for __ in range(10):
            ref = "".join(rng.choice("ACGT") for _ in range(80))
            qry = list(ref[:70])
            for __ in range(4):
                qry[rng.randrange(70)] = rng.choice("ACGT")
            qry = "".join(qry)
            assert (
                SystolicBandedSW(6).best_score(ref, qry)
                == banded_extension_score(ref, qry, 6)[0]
            )
