"""Tests for repro.align.extension_oracle (the scoring-machine ground truth)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.extension_oracle import clipped_best_score, extension_oracle
from repro.align.smith_waterman import extension_align, global_score

dna = st.text(alphabet="ACGT", max_size=12)


class TestExtensionOracle:
    def test_identical_strings(self):
        result = extension_oracle("ACGT", "ACGT", k=2)
        assert result.best_clipped_score == 4
        assert result.final_score == 4
        assert result.final_edits == 0

    def test_empty_strings(self):
        result = extension_oracle("", "", k=0)
        assert result.best_clipped_score == 0
        assert result.final_score == 0

    def test_no_alignment_within_k(self):
        result = extension_oracle("AAAA", "TTTT", k=2)
        assert result.final_score is None
        assert result.best_clipped_score == 0

    def test_single_substitution(self):
        result = extension_oracle("ACGT", "AGGT", k=1)
        assert result.final_score == 3 - 4
        assert result.final_edits == 1

    def test_clipping_beats_full(self):
        # A bad tail: clipping keeps the good prefix.
        result = extension_oracle("ACGTACGT" + "AAAA", "ACGTACGT" + "TTTT", k=4)
        assert result.best_clipped_score == 8
        assert result.best_end[0] == 8 and result.best_end[1] == 8

    def test_edit_budget_blocks_expensive_paths(self):
        # Two substitutions needed; k=1 forbids the full alignment.
        limited = extension_oracle("AACC", "ATCT", k=1)
        relaxed = extension_oracle("AACC", "ATCT", k=2)
        assert limited.final_score is None
        assert relaxed.final_score == 2 - 8

    def test_affine_gap_costing(self):
        # One 2-base insertion: open+2*extend = -8, plus 4 matches.
        result = extension_oracle("ACGT", "ACTTGT", k=2)
        assert result.final_score == 4 - 8

    def test_substitution_only_on_mismatch(self):
        # With k=0 matching strings still align perfectly.
        result = extension_oracle("ACGT", "ACGT", k=0)
        assert result.final_score == 4

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            extension_oracle("A", "A", -1)

    @given(dna, dna)
    @settings(max_examples=50, deadline=None)
    def test_large_k_matches_unbounded_dp(self, ref, qry):
        k = len(ref) + len(qry)
        oracle = extension_oracle(ref, qry, k)
        assert oracle.best_clipped_score == max(
            0, extension_align(ref, qry).alignment.score
        )
        assert oracle.final_score == global_score(ref, qry)

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_k(self, ref, qry, k):
        tight = extension_oracle(ref, qry, k)
        loose = extension_oracle(ref, qry, k + 1)
        assert loose.best_clipped_score >= tight.best_clipped_score
        if tight.final_score is not None:
            assert loose.final_score is not None
            assert loose.final_score >= tight.final_score

    def test_convenience_wrapper(self):
        assert clipped_best_score("ACGT", "ACGT", 1) == 4
