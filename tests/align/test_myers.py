"""Tests for repro.align.myers (bit-vector edit distance)."""

from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.align.myers import myers_bounded, myers_distance, myers_search

dna = st.text(alphabet="ACGT", max_size=24)


class TestMyersDistance:
    def test_identity(self):
        assert myers_distance("GATTACA", "GATTACA") == 0

    def test_classic(self):
        assert myers_distance("kitten", "sitting") == 3

    def test_empty_pattern(self):
        assert myers_distance("", "ACGT") == 4

    def test_empty_text(self):
        assert myers_distance("ACGT", "") == 4

    def test_long_pattern_multiword(self):
        # Longer than 64 symbols: exercises big-int "words".
        pattern = "ACGT" * 40
        text = pattern[:70] + "T" + pattern[70:]
        assert myers_distance(pattern, text) == 1

    @given(dna, dna)
    @settings(max_examples=120, deadline=None)
    def test_matches_dp(self, a, b):
        assert myers_distance(a, b) == levenshtein(a, b)


class TestMyersBounded:
    def test_within(self):
        assert myers_bounded("ACGT", "ACCT", 2) == 1

    def test_beyond(self):
        assert myers_bounded("AAAA", "TTTT", 2) is None

    @given(dna, dna, st.integers(0, 6))
    @settings(max_examples=80, deadline=None)
    def test_same_contract_as_silla(self, a, b, k):
        truth = levenshtein(a, b)
        assert myers_bounded(a, b, k) == (truth if truth <= k else None)


class TestMyersSearch:
    def test_exact_occurrence_found(self):
        hits = myers_search("ACGT", "TTACGTTT", k=0)
        assert 6 in hits  # match ends after text position 6

    def test_approximate_occurrence(self):
        hits = myers_search("ACGT", "TTACCTTT", k=1)
        assert hits  # one substitution away

    def test_no_match_when_k_too_small(self):
        assert myers_search("AAAA", "TTTTTTT", k=1) == ()

    def test_empty_pattern_matches_everywhere(self):
        assert myers_search("", "ACG", k=0) == (0, 1, 2, 3)

    def test_end_positions_verified_by_dp(self):
        pattern, text, k = "ACGTA", "GGACGTAGG", 1
        for end in myers_search(pattern, text, k):
            # Some suffix of text[:end] is within k of the pattern.
            best = min(
                levenshtein(pattern, text[start:end]) for start in range(end + 1)
            )
            assert best <= k
