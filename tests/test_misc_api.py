"""Coverage for remaining public API surfaces not exercised elsewhere."""

import pytest

from repro.align.cigar import Cigar, trace_from_pairs
from repro.genome.assembly import Assembly
from repro.genome.reference import make_reference
from repro.seeding.accelerator import SeedingAccelerator, SeedingStats
from repro.seeding.smem import SmemConfig


class TestAssemblyFromFasta:
    def test_from_fasta_records(self):
        assembly = Assembly.from_fasta_records([("chr1", "ACGT"), ("chr2", "GGCC")])
        assert assembly.contig_names == ["chr1", "chr2"]
        assert len(assembly) == 8

    def test_rejects_invalid_sequence(self):
        with pytest.raises(ValueError):
            Assembly.from_fasta_records([("chr1", "ACGN")])

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Assembly.from_fasta_records([("", "ACGT")])


class TestSeedingStatsCycles:
    def test_cycle_model_components(self, small_reference):
        accel = SeedingAccelerator(small_reference, SmemConfig(k=12), segment_count=2)
        accel.seed_reads([small_reference.sequence[100:201]])
        stats = accel.stats
        assert stats.cycles == (
            2 * stats.finder.index_lookups
            + stats.intersections.cam_loads
            + stats.intersections.cam_lookups
            + stats.intersections.search_probes
        )
        assert stats.cycles_per_read == stats.cycles / 1

    def test_empty_stats(self):
        stats = SeedingStats()
        assert stats.cycles == 0
        assert stats.cycles_per_read == 0.0
        assert stats.hits_per_read == 0.0
        assert stats.lookups_per_read == 0.0


class TestCigarTraceHelpers:
    def test_trace_from_pairs_with_both_gap_kinds(self):
        # ref: A.CG..T ; qry pairs skip ref index 1 (D) and qry index 2 (I).
        ref, qry = "AXCGT", "ACZGT"
        pairs = [(0, 0), (2, 1), (3, 3), (4, 4)]
        cigar = trace_from_pairs(ref, qry, pairs)
        assert cigar.count("D") == 1
        assert cigar.count("I") == 1
        assert cigar.count("=") == 4

    def test_expand_roundtrip(self):
        cigar = Cigar.from_string("3=1X2I")
        assert Cigar.from_edit_trace(cigar.expand()) == cigar


class TestHistoryRecording:
    def test_silla_history_shrinks_to_empty_on_death(self):
        from repro.core.silla import Silla

        silla = Silla(0)
        silla.run("AAAA", "TTTT", record_history=True)
        assert silla.active_history[0] == frozenset({(0, 0, 0)})
        # With K = 0 the first mismatch kills everything.
        assert silla.active_history[-1] == frozenset() or len(silla.active_history) <= 2

    def test_edit_machine_result_fields(self):
        from repro.sillax.edit_machine import EditMachine

        result = EditMachine(2).run("ACGT", "ACGT")
        assert result.distance == 0
        assert result.peak_active >= 1
        assert result.cycles > 4


class TestReferenceBuilderEdges:
    def test_tiny_genome_with_repeats_does_not_crash(self):
        # Repeat blocks larger than the genome must be skipped gracefully.
        reference = make_reference(120, seed=31)
        assert len(reference) == 120

    def test_named_reference(self):
        assert make_reference(100, seed=1, name="chrT").name == "chrT"
