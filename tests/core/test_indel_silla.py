"""Tests for repro.core.indel_silla (§III-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.indel_silla import IndelSilla, indel_distance, indel_state_count

dna = st.text(alphabet="ACGT", max_size=14)
binary = st.text(alphabet="AC", max_size=12)


class TestIndelDistanceOracle:
    def test_identity(self):
        assert indel_distance("ACGT", "ACGT") == 0

    def test_single_insertion(self):
        assert indel_distance("ACGT", "ACGGT") == 1

    def test_substitution_costs_two(self):
        # Without substitutions, a changed base needs delete + insert.
        assert indel_distance("ACGT", "AGGT") == 2

    def test_relates_to_lcs(self):
        # |a| + |b| - 2*LCS.
        assert indel_distance("ABCD", "BD".replace("B", "C").replace("D", "G")) >= 2


class TestStateCount:
    def test_half_square(self):
        # (K+1)(K+2)/2 exact; the paper rounds to (K+1)^2/2.
        assert indel_state_count(0) == 1
        assert indel_state_count(1) == 3
        assert indel_state_count(2) == 6
        assert indel_state_count(40) == 41 * 42 // 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            indel_state_count(-1)


class TestIndelSilla:
    def test_identical(self):
        assert IndelSilla(2).distance("ACGT", "ACGT") == 0

    def test_paper_figure3a(self):
        """Fig. 3a: one insertion + one deletion aligns the strings."""
        assert IndelSilla(2).distance("AXBCD", "YABCD") == 2

    def test_insertion(self):
        assert IndelSilla(2).distance("ACGT", "AACGT") == 1

    def test_deletion(self):
        assert IndelSilla(2).distance("AACGT", "ACGT") == 1

    def test_beyond_k_returns_none(self):
        assert IndelSilla(1).distance("ACGT", "ACGTTTT") is None

    def test_length_gap_short_circuit(self):
        result = IndelSilla(2).run("A" * 10, "A")
        assert result.distance is None
        assert result.cycles == 0

    def test_empty_strings(self):
        assert IndelSilla(0).distance("", "") == 0

    def test_empty_vs_short(self):
        assert IndelSilla(3).distance("", "ACG") == 3

    def test_accepting_state_offsets_match_length_difference(self):
        result = IndelSilla(4).run("ACGT", "ACGGTT")
        assert result.accepting_states
        for i, d in result.accepting_states:
            # i - d = |Q| - |R|: surplus query characters are insertions.
            assert i - d == len("ACGGTT") - len("ACGT")

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            IndelSilla(-1)

    def test_history_recording(self):
        silla = IndelSilla(1)
        silla.run("AC", "AC", record_history=True)
        assert silla.active_history[0] == frozenset({(0, 0)})

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_matches_oracle(self, a, b, k):
        truth = indel_distance(a, b)
        expected = truth if truth <= k else None
        assert IndelSilla(k).distance(a, b) == expected

    @given(binary, binary, st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_string_independence(self, a, b, k):
        """One automaton instance processes many different pairs."""
        silla = IndelSilla(k)
        first = silla.distance(a, b)
        second = silla.distance(b, a)
        assert first == silla.distance(a, b)  # no state leaks between runs
        assert second == silla.distance(b, a)
