"""Tests for repro.core.silla — the collapsed automaton (§III-C/D)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.core.silla import Silla, silla_state_count
from repro.core.three_d_silla import ThreeDSilla, three_d_state_count

dna = st.text(alphabet="ACGT", max_size=14)
binary = st.text(alphabet="AC", max_size=12)


class TestStateCount:
    def test_collapse_is_quadratic(self):
        # 3 layers (two regular + wait) over the half-square grid; the paper
        # rounds to 3(K+1)^2/2.
        assert silla_state_count(2) == 18
        assert silla_state_count(40) == 3 * (41 * 42 // 2)

    def test_collapse_beats_3d(self):
        # Equal at K = 2 (3 layers either way), strictly smaller beyond.
        assert silla_state_count(2) == three_d_state_count(2)
        for k in (3, 5, 10, 40):
            assert silla_state_count(k) < three_d_state_count(k)

    def test_k0(self):
        assert silla_state_count(0) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            silla_state_count(-1)


class TestSillaBasics:
    def test_identity(self):
        assert Silla(2).distance("GATTACA", "GATTACA") == 0

    def test_substitution(self):
        assert Silla(1).distance("ACGT", "AGGT") == 1

    def test_two_substitutions_via_wait_state(self):
        """Fig. 3b: the wait-cycle merge path recovers 2-sub solutions."""
        assert Silla(2).distance("AXBCD", "YABCD") == 2

    def test_insertion(self):
        assert Silla(1).distance("ACGT", "ACGGT") == 1

    def test_deletion(self):
        assert Silla(1).distance("ACGGT", "ACGT") == 1

    def test_k0_exact_match_only(self):
        assert Silla(0).distance("ACGT", "ACGT") == 0
        assert Silla(0).distance("ACGT", "ACGA") is None

    def test_beyond_k(self):
        assert Silla(2).distance("AAAA", "TTTT") is None

    def test_empty_strings(self):
        assert Silla(0).distance("", "") == 0

    def test_one_empty(self):
        assert Silla(4).distance("ACGT", "") == 4
        assert Silla(3).distance("ACGT", "") is None

    def test_matches_method(self):
        assert Silla(1).matches("ACGT", "ACGA")
        assert not Silla(1).matches("ACGT", "TTTT")

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            Silla(-1)

    def test_runtime_is_linear_in_string_length(self):
        """Silla computes in ~N cycles (§III intro), not N^2."""
        silla = Silla(2)
        result = silla.run("ACGT" * 50, "ACGT" * 50)
        assert result.distance == 0
        assert result.cycles <= 4 * 50 + 2 + 3

    def test_history_starts_at_origin(self):
        silla = Silla(2)
        silla.run("AC", "AC", record_history=True)
        assert silla.active_history[0] == frozenset({(0, 0, 0)})


class TestStringIndependence:
    """Unlike LA, one Silla instance handles every string pair (§III)."""

    def test_many_pairs_one_automaton(self):
        silla = Silla(3)
        rng = random.Random(4)
        for _ in range(30):
            a = "".join(rng.choice("ACGT") for _ in range(rng.randrange(0, 12)))
            b = "".join(rng.choice("ACGT") for _ in range(rng.randrange(0, 12)))
            truth = levenshtein(a, b)
            assert silla.distance(a, b) == (truth if truth <= 3 else None)


class TestAgainstOracles:
    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=150, deadline=None)
    def test_matches_levenshtein(self, a, b, k):
        truth = levenshtein(a, b)
        expected = truth if truth <= k else None
        assert Silla(k).distance(a, b) == expected

    @given(binary, binary, st.integers(0, 4))
    @settings(max_examples=80, deadline=None)
    def test_collapse_equivalent_to_3d(self, a, b, k):
        """§III-C: the collapsed automaton equals the explicit 3-D one."""
        assert Silla(k).distance(a, b) == ThreeDSilla(k).distance(a, b)

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_accepting_edits_are_consistent(self, a, b):
        """Every accepting state's (i, d, layer) is a real alignment bound."""
        result = Silla(4).run(a, b)
        truth = levenshtein(a, b)
        for i, d, layer in result.accepting_states:
            assert i + d + layer >= truth  # soundness: no underestimates
            # Acceptance fixes the indel imbalance: i - d = |Q| - |R|.
            assert i - d == len(b) - len(a)
