"""Tests for repro.core.applications (§VIII-C extensions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.applications import (
    best_corrections,
    edit_distance_unbounded,
    lcs_length,
    similarity_filter,
)
from repro.align.edit_distance import levenshtein

dna = st.text(alphabet="ACGT", max_size=14)
words = st.text(alphabet="abcdefg", min_size=1, max_size=8)


def lcs_oracle(a: str, b: str) -> int:
    previous = [0] * (len(b) + 1)
    for ch in a:
        current = [0]
        for j, other in enumerate(b, start=1):
            if ch == other:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


class TestLCS:
    def test_identical(self):
        assert lcs_length("GATTACA", "GATTACA") == 7

    def test_classic(self):
        assert lcs_length("AGGTAB".lower().upper(), "GXTXAYB".replace("X", "C").replace("Y", "C")) == 4

    def test_disjoint(self):
        assert lcs_length("AAAA", "TTTT") == 0

    def test_empty(self):
        assert lcs_length("", "ACGT") == 0
        assert lcs_length("ACGT", "") == 0

    def test_subsequence(self):
        assert lcs_length("ACGTACGT", "CGAG") == 4

    @given(dna, dna)
    @settings(max_examples=80, deadline=None)
    def test_matches_dp_oracle(self, a, b):
        assert lcs_length(a, b) == lcs_oracle(a, b)


class TestUnboundedEditDistance:
    def test_widening_finds_large_distances(self):
        assert edit_distance_unbounded("AAAAAAAA", "TTTTTTTT") == 8

    def test_zero(self):
        assert edit_distance_unbounded("ACGT", "ACGT") == 0

    def test_empty(self):
        assert edit_distance_unbounded("", "") == 0
        assert edit_distance_unbounded("ACG", "") == 3

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_levenshtein(self, a, b):
        assert edit_distance_unbounded(a, b) == levenshtein(a, b)


class TestSpellCorrection:
    DICTIONARY = ["accept", "except", "expect", "aspect", "access"]

    def test_exact_word_ranked_first(self):
        matches = best_corrections("accept", self.DICTIONARY)
        assert matches[0].word == "accept"
        assert matches[0].distance == 0

    def test_near_miss(self):
        matches = best_corrections("acept", self.DICTIONARY, max_edits=1)
        assert matches[0].word == "accept"

    def test_no_match_beyond_k(self):
        assert best_corrections("zzzzzz", self.DICTIONARY, max_edits=1) == []

    def test_limit(self):
        matches = best_corrections("excep", self.DICTIONARY, max_edits=2, limit=1)
        assert len(matches) == 1

    def test_deterministic_tie_order(self):
        matches = best_corrections("exept", self.DICTIONARY, max_edits=2)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)


class TestSimilarityFilter:
    def test_thresholding(self):
        verdicts = similarity_filter(
            [("ACGT", "ACGT"), ("ACGT", "ACGA"), ("ACGT", "TTTT")], max_edits=1
        )
        assert verdicts == [True, True, False]

    def test_empty_batch(self):
        assert similarity_filter([], max_edits=2) == []
