"""Tests for repro.core.retro."""

from repro.core.retro import peripheral_comparisons, retro_compare, retro_positions


class TestRetroCompare:
    def test_matches_aligned_characters(self):
        # No edits: cycle c compares R[c] with Q[c].
        assert retro_compare("ACGT", "ACGT", 2, 0, 0)

    def test_insertion_offsets_reference(self):
        # One insertion: state compares R[c-1] with Q[c] (Fig. 2a).
        assert retro_compare("AB", "XAB", 1, 1, 0)  # R[0]='A' vs Q[1]='A'

    def test_deletion_offsets_query(self):
        assert retro_compare("XAB", "AB", 1, 0, 1)  # R[1]='A' vs Q[0]='A'

    def test_out_of_range_reference_never_matches(self):
        assert not retro_compare("A", "AAAA", 2, 0, 0)

    def test_out_of_range_query_never_matches(self):
        assert not retro_compare("AAAA", "A", 2, 0, 0)

    def test_negative_position_never_matches(self):
        assert not retro_compare("A", "A", 0, 1, 0)

    def test_paper_figure3a_walkthrough(self):
        """Fig. 3a: R='AxBCD', Q='yABCD' resolved by one ins + one del."""
        reference, query = "AXBCD", "YABCD"
        # Cycle 0 at (0,0): A vs y mismatches.
        assert not retro_compare(reference, query, 0, 0, 0)
        # Cycle 1 at (1,0): A vs A matches (insertion explored).
        assert retro_compare(reference, query, 1, 1, 0)
        # Cycle 2 at (1,0): x vs B mismatches.
        assert not retro_compare(reference, query, 2, 1, 0)
        # Cycle 3 at (1,1): B vs B matches (deletion explored).
        assert retro_compare(reference, query, 3, 1, 1)
        # Cycles 4: C/C, D/D complete the alignment at (1,1).
        assert retro_compare(reference, query, 4, 1, 1)


class TestRetroPositions:
    def test_positions(self):
        pos = retro_positions(cycle=7, insertions=2, deletions=3)
        assert pos.as_tuple == (5, 4)


class TestPeripheralComparisons:
    def test_count_is_2k_plus_1(self):
        row, column = peripheral_comparisons("ACGT", "ACGT", 1, k=3)
        # K+1 per dimension sharing the (0, 0) entry.
        assert len(row) == 4 and len(column) == 4
        assert row[0] == column[0]

    def test_values_match_direct_computation(self):
        reference, query = "ACGTAC", "AGGTAC"
        for cycle in range(6):
            row, column = peripheral_comparisons(reference, query, cycle, k=2)
            for i in range(3):
                assert row[i] == retro_compare(reference, query, cycle, i, 0)
            for d in range(3):
                assert column[d] == retro_compare(reference, query, cycle, 0, d)
