"""Tests for repro.core.three_d_silla (§III-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.core.three_d_silla import ThreeDSilla, three_d_state_count

dna = st.text(alphabet="ACGT", max_size=12)


class TestStateCount:
    def test_cubic_scaling(self):
        # (K+1) layers of the half-square grid; paper rounds to (K+1)^3/2.
        assert three_d_state_count(1) == 3 * 2
        assert three_d_state_count(2) == 6 * 3
        assert three_d_state_count(40) == (41 * 42 // 2) * 41

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            three_d_state_count(-1)


class TestThreeDSilla:
    def test_identity(self):
        assert ThreeDSilla(1).distance("ACGT", "ACGT") == 0

    def test_substitution_single_edit(self):
        assert ThreeDSilla(1).distance("ACGT", "AGGT") == 1

    def test_paper_figure3b_two_substitutions(self):
        """Fig. 3b: the same strings also align with two substitutions."""
        result = ThreeDSilla(2).run("AXBCD", "YABCD")
        assert result.distance == 2
        # Both the 2-sub and the ins+del solutions are accepting.
        edit_mixes = {(i, d, s) for i, d, s in result.accepting_states if i + d + s == 2}
        assert (0, 0, 2) in edit_mixes
        assert (1, 1, 0) in edit_mixes

    def test_mixed_edits(self):
        assert ThreeDSilla(3).distance("ACGTACG", "AGGTCG") == 2

    def test_beyond_k(self):
        assert ThreeDSilla(2).distance("AAAA", "TTTT") is None

    def test_empty(self):
        assert ThreeDSilla(0).distance("", "") == 0

    @given(dna, dna, st.integers(0, 4))
    @settings(max_examples=100, deadline=None)
    def test_matches_levenshtein(self, a, b, k):
        truth = levenshtein(a, b)
        expected = truth if truth <= k else None
        assert ThreeDSilla(k).distance(a, b) == expected
