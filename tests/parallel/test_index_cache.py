"""Tests for repro.seeding.cache and the packed index it deserializes to."""

import pytest

from repro.genome.reference import make_reference
from repro.seeding.cache import IndexCache, index_fingerprint
from repro.seeding.index import KmerIndex, PackedKmerIndex

K = 8
SEGMENTS = 3
OVERLAP = 64


@pytest.fixture(scope="module")
def reference():
    return make_reference(4_000, seed=41)


def assert_tables_equivalent(actual, expected, probes):
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.segment_index, a.segment_start) == (
            b.segment_index,
            b.segment_start,
        )
        assert a.index.k == b.index.k
        assert a.index.distinct_kmers == b.index.distinct_kmers
        assert a.index.total_positions == b.index.total_positions
        assert a.index.hit_histogram() == b.index.hit_histogram()
        assert a.sram_bytes == b.sram_bytes
        for kmer in probes:
            assert list(a.index.hits(kmer)) == list(b.index.hits(kmer))


class TestFingerprint:
    def test_stable(self, reference):
        assert index_fingerprint(reference, K, SEGMENTS, OVERLAP) == (
            index_fingerprint(reference, K, SEGMENTS, OVERLAP)
        )

    def test_invalidation_rules(self, reference):
        """Any of (sequence, k, segment count, overlap) changes the key."""
        base = index_fingerprint(reference, K, SEGMENTS, OVERLAP)
        other_reference = make_reference(4_000, seed=42)
        assert index_fingerprint(other_reference, K, SEGMENTS, OVERLAP) != base
        assert index_fingerprint(reference, K + 1, SEGMENTS, OVERLAP) != base
        assert index_fingerprint(reference, K, SEGMENTS + 1, OVERLAP) != base
        assert index_fingerprint(reference, K, SEGMENTS, OVERLAP + 1) != base


class TestIndexCache:
    def test_cold_then_warm(self, reference, tmp_path):
        probes = [reference.sequence[i : i + K] for i in (0, 100, 900)]
        cold = IndexCache(tmp_path)
        built = cold.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert (cold.stats.misses, cold.stats.hits) == (1, 0)
        assert all(isinstance(t.index, KmerIndex) for t in built)

        warm = IndexCache(tmp_path)
        loaded = warm.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert (warm.stats.misses, warm.stats.hits) == (0, 1)
        assert all(isinstance(t.index, PackedKmerIndex) for t in loaded)
        assert_tables_equivalent(loaded, built, probes)

    def test_same_instance_hits_second_time(self, reference, tmp_path):
        cache = IndexCache(tmp_path)
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)

    def test_different_k_is_a_miss(self, reference, tmp_path):
        cache = IndexCache(tmp_path)
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        cache.load_or_build(reference, K + 2, SEGMENTS, OVERLAP)
        assert cache.stats.misses == 2

    @pytest.mark.parametrize(
        "garbage",
        [b"", b"not a cache entry", b"GENAXIDX\n\xff\xff\xff\xff"],
        ids=["empty", "bad-magic", "bad-header"],
    )
    def test_corrupt_entry_rebuilds(self, reference, tmp_path, garbage):
        cache = IndexCache(tmp_path)
        fingerprint = index_fingerprint(reference, K, SEGMENTS, OVERLAP)
        path = cache.entry_path(fingerprint)
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        path.write_bytes(garbage)
        tables = cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert cache.stats.misses == 2
        assert tables  # rebuilt fine, and the entry is re-written
        warm = IndexCache(tmp_path)
        warm.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert warm.stats.hits == 1

    def test_truncated_entry_rebuilds(self, reference, tmp_path):
        cache = IndexCache(tmp_path)
        fingerprint = index_fingerprint(reference, K, SEGMENTS, OVERLAP)
        path = cache.entry_path(fingerprint)
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        path.write_bytes(path.read_bytes()[:-16])
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert cache.stats.misses == 2

    def test_creates_missing_directory(self, reference, tmp_path):
        cache = IndexCache(tmp_path / "nested" / "cache")
        cache.load_or_build(reference, K, SEGMENTS, OVERLAP)
        warm = IndexCache(tmp_path / "nested" / "cache")
        warm.load_or_build(reference, K, SEGMENTS, OVERLAP)
        assert warm.stats.hits == 1


class TestPackedKmerIndex:
    @pytest.fixture(scope="class")
    def pair(self, reference):
        index = KmerIndex.build(reference.sequence[:1500], K)
        return index, PackedKmerIndex.pack(index)

    def test_hits_identical_for_all_kmers(self, reference, pair):
        index, packed = pair
        sequence = reference.sequence[:1500]
        for offset in range(0, len(sequence) - K + 1, 7):
            kmer = sequence[offset : offset + K]
            hits = packed.hits(kmer)
            assert list(hits) == list(index.hits(kmer))
            assert all(type(position) is int for position in hits)

    def test_absent_and_ambiguous_kmers(self, pair):
        index, packed = pair
        assert list(packed.hits("T" * K)) == list(index.hits("T" * K))
        assert packed.hits("N" * K) == ()
        assert packed.hit_count("N" * K) == 0
        assert not packed.contains("N" * K)

    def test_wrong_length_raises(self, pair):
        __, packed = pair
        with pytest.raises(ValueError):
            packed.hits("ACG")

    def test_summary_statistics_match(self, pair):
        index, packed = pair
        assert packed.distinct_kmers == index.distinct_kmers
        assert packed.total_positions == index.total_positions
        assert packed.hit_histogram() == index.hit_histogram()
        assert packed.position_table_bytes() == index.position_table_bytes()
        assert packed.index_table_bytes() == index.index_table_bytes()
        assert packed.hit_count("A" * K) == index.hit_count("A" * K)
