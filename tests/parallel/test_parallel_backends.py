"""Backend-agnostic sharding: ParallelAligner over non-genax backends.

The generalized engine's contract (the tentpole's parallel layer): any
backend registered in ``repro.pipeline.registry`` shards through the same
driver, with bit-identical mappings and exactly-merged counters — here
exercised with ``bwamem``, which pre-refactor could not shard at all.
"""

import pytest

from repro.parallel import ParallelAligner
from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig
from repro.pipeline.genax import GenAxConfig

CONFIG = dict(band=12)


def mapping_key(mapped):
    return [
        (m.read_name, m.position, m.reverse, m.score, str(m.cigar),
         m.mapping_quality, m.secondary_count)
        for m in mapped
    ]


@pytest.fixture(scope="module")
def batch(simulated_reads):
    return [(s.name, s.sequence) for s in simulated_reads[:8]]


@pytest.fixture(scope="module")
def serial_run(small_reference, batch):
    aligner = BwaMemAligner(small_reference, BwaMemConfig(**CONFIG))
    mapped = aligner.align_batch(batch)
    return aligner, mapped


class TestBwaMemSharding:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_mappings_bit_identical(self, small_reference, batch, serial_run, jobs):
        __, serial_mapped = serial_run
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(**CONFIG), jobs=jobs
        )
        assert mapping_key(parallel.align_batch(batch)) == mapping_key(
            serial_mapped
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_counters_merge_to_serial_totals(
        self, small_reference, batch, serial_run, jobs
    ):
        """Software backend has no segment tables, so *every* counter —
        reads, extensions, DP cells — matches the serial run exactly."""
        serial, __ = serial_run
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(**CONFIG), jobs=jobs
        )
        parallel.align_batch(batch)
        assert parallel.stats == serial.stats
        assert parallel.stats.dp_cells > 0

    def test_hardware_counter_surface_is_empty(self, small_reference, batch):
        """lane_stats/seeding_stats exist (CounterSource contract) but stay
        zero for a backend that models no accelerator hardware."""
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(**CONFIG), jobs=2
        )
        parallel.align_batch(batch)
        assert parallel.lane_stats.extensions == 0
        assert parallel.seeding_stats.reads_processed == 0
        assert parallel.prefilter_stats is None


class TestBackendResolution:
    def test_backend_inferred_from_config_type(self, small_reference):
        assert (
            ParallelAligner(small_reference, BwaMemConfig(**CONFIG)).backend
            == "bwamem"
        )
        assert ParallelAligner(small_reference, GenAxConfig()).backend == "genax"

    def test_backend_defaults_to_genax(self, small_reference):
        parallel = ParallelAligner(small_reference)
        assert parallel.backend == "genax"
        assert isinstance(parallel.config, GenAxConfig)

    def test_explicit_backend_name(self, small_reference):
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(**CONFIG), backend="bwamem"
        )
        assert parallel.backend == "bwamem"

    def test_config_type_mismatch_rejected(self, small_reference):
        with pytest.raises(ValueError, match="expects a BwaMemConfig"):
            ParallelAligner(small_reference, GenAxConfig(), backend="bwamem")

    def test_unknown_backend_rejected(self, small_reference):
        with pytest.raises(ValueError, match="unknown backend"):
            ParallelAligner(small_reference, backend="minimap2")

    def test_jobs_default_from_bwamem_config(self, small_reference):
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(jobs=3, **CONFIG)
        )
        assert parallel.jobs == 3

    def test_counters_bundle_carries_backend_name(self, small_reference, batch):
        parallel = ParallelAligner(
            small_reference, BwaMemConfig(**CONFIG), jobs=2
        )
        parallel.align_batch(batch)
        assert parallel.counters.backend == "bwamem"
        assert parallel.counters.alignment.reads_total == len(batch)
