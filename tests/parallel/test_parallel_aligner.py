"""Concordance and counter-merging tests for repro.parallel.engine.

The contract under test: for any worker count, ``ParallelAligner`` output
is bit-identical to the serial ``GenAxAligner.align_batch`` on the same
batch, and every merged counter matches the serial run's — except
``table_bytes_streamed``, which legitimately grows with the chunk count
(each shard streams the segment tables through its own modelled SRAM).
"""

import pytest

from repro.analysis.config import shard_variant_counters
from repro.pipeline.counters import collect_counters
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.parallel import ParallelAligner

CONFIG = dict(edit_bound=12, segment_count=4)


def mapping_key(mapped):
    return [
        (m.read_name, m.position, m.reverse, m.score, str(m.cigar),
         m.mapping_quality, m.secondary_count)
        for m in mapped
    ]


def assert_lane_stats_equivalent(actual, expected):
    """Lane counters must agree; sample *order* may differ across shards."""
    assert actual.extensions == expected.extensions
    assert actual.cycles == expected.cycles
    assert actual.stream_cycles == expected.stream_cycles
    assert actual.rerun_events == expected.rerun_events
    assert actual.rerun_cycles == expected.rerun_cycles
    assert sorted(actual.rerun_cycle_samples) == sorted(
        expected.rerun_cycle_samples
    )


@pytest.fixture(scope="module")
def batch(simulated_reads):
    return [(s.name, s.sequence) for s in simulated_reads[:8]]


@pytest.fixture(scope="module")
def serial_run(small_reference, batch):
    aligner = GenAxAligner(small_reference, GenAxConfig(**CONFIG))
    mapped = aligner.align_batch(batch)
    return aligner, mapped


class TestConcordance:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_mappings_bit_identical(self, small_reference, batch, serial_run, jobs):
        __, serial_mapped = serial_run
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=jobs
        )
        assert mapping_key(parallel.align_batch(batch)) == mapping_key(
            serial_mapped
        )

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_counters_merge_to_serial_totals(
        self, small_reference, batch, serial_run, jobs
    ):
        """Property: merged shard counters == serial counters (satellite)."""
        serial, __ = serial_run
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=jobs
        )
        parallel.align_batch(batch)
        # reads_total/mapped/unmapped/exact, extensions, cycles.
        assert parallel.stats == serial.stats
        assert_lane_stats_equivalent(parallel.lane_stats, serial.lane_stats)
        # Seeding: index lookups, CAM loads/lookups/probes, reads processed.
        assert parallel.seeding_stats.finder == serial.seeding_stats.finder
        assert (
            parallel.seeding_stats.intersections
            == serial.seeding_stats.intersections
        )
        assert (
            parallel.seeding_stats.reads_processed
            == serial.seeding_stats.reads_processed
        )

    def test_table_traffic_grows_with_chunks(
        self, small_reference, batch, serial_run
    ):
        """Sharding honestly re-streams tables once per chunk, not once."""
        serial, __ = serial_run
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=2
        )
        parallel.align_batch(batch)
        assert (
            parallel.seeding_stats.table_bytes_streamed
            > serial.seeding_stats.table_bytes_streamed
        )

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_every_counter_matches_serial_unless_allowlisted(
        self, small_reference, batch, serial_run, jobs
    ):
        """Walk the *whole* counter surface: equality is the default, and
        any exception must be declared in the genaxlint counter allowlist
        (repro.analysis.config.COUNTER_ALLOWLIST) — the allowlist is the
        single audited list of shard-variant counters, so an undeclared
        divergence fails here and a declared one is asserted to actually
        diverge (a stale allowlist entry also fails)."""
        serial, __ = serial_run
        parallel = ParallelAligner(small_reference, GenAxConfig(**CONFIG), jobs=jobs)
        parallel.align_batch(batch)
        serial_counters = collect_counters(serial).as_dict()
        parallel_counters = collect_counters(parallel).as_dict()
        variant = shard_variant_counters()
        assert "table_bytes_streamed" in variant
        for name, serial_value in serial_counters.items():
            if name in variant:
                assert parallel_counters[name] > serial_value, (
                    f"{name} is allowlisted as shard-variant but did not "
                    "diverge — remove the stale allowlist entry"
                )
            else:
                assert parallel_counters[name] == serial_value, (
                    f"counter {name} diverged under sharding without a "
                    "COUNTER_ALLOWLIST entry"
                )

    def test_collect_counters_accepts_parallel_aligner(
        self, small_reference, batch
    ):
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=2
        )
        parallel.align_batch(batch)
        counters = collect_counters(parallel)
        assert counters.reads_total == len(batch)
        assert counters.reads_mapped + counters.reads_unmapped == len(batch)


class TestPrefilterMerging:
    def test_merged_prefilter_stats_match_serial(
        self, small_reference, batch
    ):
        config = GenAxConfig(prefilter=True, **CONFIG)
        serial = GenAxAligner(small_reference, config)
        serial.align_batch(batch)
        parallel = ParallelAligner(small_reference, config, jobs=2)
        parallel.align_batch(batch)
        assert parallel.prefilter_stats == serial.prefilter_stats
        assert parallel.prefilter_stats.candidates_checked > 0

    def test_prefilter_stats_none_when_disabled(self, small_reference, batch):
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=2
        )
        parallel.align_batch(batch)
        assert parallel.prefilter_stats is None


class TestDriverSurface:
    def test_empty_batch(self, small_reference):
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=2
        )
        assert parallel.align_batch([]) == []

    def test_read_objects_accepted(self, small_reference, simulated_reads):
        reads = [s.read for s in simulated_reads[:2]]
        parallel = ParallelAligner(
            small_reference, GenAxConfig(**CONFIG), jobs=2
        )
        mapped = parallel.align_batch(reads)
        assert [m.read_name for m in mapped] == [r.name for r in reads]

    def test_align_read_delegates(self, small_reference, simulated_reads):
        sample = simulated_reads[0]
        parallel = ParallelAligner(small_reference, GenAxConfig(**CONFIG))
        mapped = parallel.align_read(sample.name, sample.sequence)
        assert mapped.read_name == sample.name

    def test_jobs_default_from_config(self, small_reference):
        parallel = ParallelAligner(
            small_reference, GenAxConfig(jobs=3, **CONFIG)
        )
        assert parallel.jobs == 3

    def test_invalid_jobs(self, small_reference):
        with pytest.raises(ValueError):
            ParallelAligner(small_reference, GenAxConfig(**CONFIG), jobs=0)
