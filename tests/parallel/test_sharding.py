"""Tests for repro.parallel.sharding."""

import pytest

from repro.parallel.sharding import chunk_bounds, shard_batch


class TestChunkBounds:
    def test_covers_everything_in_order(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_near_equal_sizes(self):
        sizes = [end - start for start, end in chunk_bounds(23, 5)]
        assert sum(sizes) == 23
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items_drops_empties(self):
        bounds = chunk_bounds(2, 5)
        assert bounds == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_bounds(0, 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)


class TestShardBatch:
    def test_concat_restores_batch(self):
        items = list(range(17))
        chunks = shard_batch(items, jobs=3, chunks_per_job=2)
        restored = [item for __, chunk in chunks for item in chunk]
        assert restored == items

    def test_chunk_ids_sequential(self):
        chunks = shard_batch(list(range(9)), jobs=2)
        assert [chunk_id for chunk_id, __ in chunks] == list(range(len(chunks)))

    def test_chunk_count_capped_by_items(self):
        chunks = shard_batch([1, 2], jobs=4, chunks_per_job=4)
        assert len(chunks) == 2

    def test_empty_batch(self):
        assert shard_batch([], jobs=4) == []

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            shard_batch([1], jobs=0)
        with pytest.raises(ValueError):
            shard_batch([1], jobs=1, chunks_per_job=0)
