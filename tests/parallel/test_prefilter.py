"""Tests for the Myers pre-alignment filter and its pipeline integration."""

import pytest

from repro.align.prefilter import (
    MyersPrefilter,
    PrefilterStats,
    lossless_threshold,
)
from repro.align.scoring import BWA_MEM_SCHEME, ScoringScheme
from repro.pipeline.genax import GenAxAligner, GenAxConfig

CONFIG = dict(edit_bound=12, segment_count=4)


def mapping_key(mapped):
    return [
        (m.read_name, m.position, m.reverse, m.score, str(m.cigar),
         m.mapping_quality, m.secondary_count)
        for m in mapped
    ]


class TestMyersPrefilter:
    def test_exact_window_survives(self):
        prefilter = MyersPrefilter(max_edits=0)
        assert prefilter.survives("ACGTACGT", "TTACGTACGTTT")
        assert prefilter.stats.candidates_checked == 1
        assert prefilter.stats.candidates_rejected == 0
        assert prefilter.stats.candidates_survived == 1

    def test_hopeless_window_rejected(self):
        prefilter = MyersPrefilter(max_edits=1)
        window = "T" * 20
        assert not prefilter.survives("ACAGACAG", window)
        assert prefilter.stats.candidates_rejected == 1
        assert prefilter.stats.cycles == len(window)

    def test_edit_budget_boundary(self):
        read = "AAAACCCC"
        window = "GGAAAACTCCGG"  # one substitution inside the best placement
        assert not MyersPrefilter(max_edits=0).survives(read, window)
        assert MyersPrefilter(max_edits=1).survives(read, window)

    def test_reject_fraction(self):
        prefilter = MyersPrefilter(max_edits=0)
        prefilter.survives("ACGT", "ACGT")
        prefilter.survives("ACGT", "TTTT")
        assert prefilter.stats.reject_fraction == pytest.approx(0.5)
        assert PrefilterStats().reject_fraction == 0.0

    def test_stats_merge(self):
        left = PrefilterStats(candidates_checked=4, candidates_rejected=1,
                              cycles=100)
        right = PrefilterStats(candidates_checked=2, candidates_rejected=2,
                               cycles=40)
        left.merge(right)
        assert left == PrefilterStats(candidates_checked=6,
                                      candidates_rejected=3, cycles=140)
        assert left.candidates_survived == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MyersPrefilter(max_edits=-1)


class TestLosslessThreshold:
    def test_formula(self):
        scheme = ScoringScheme(match=2, substitution=-4, gap_open=-6,
                               gap_extend=-1)
        # unit = min(2, 1) = 1; (2*100 - 30) // 1 = 170.
        assert lossless_threshold(100, scheme, 30) == 170

    def test_bwa_scheme(self):
        expected = (
            BWA_MEM_SCHEME.match * 101 - 30
        ) // min(BWA_MEM_SCHEME.match, -BWA_MEM_SCHEME.gap_extend)
        assert lossless_threshold(101, BWA_MEM_SCHEME, 30) == expected

    def test_perfect_score_requires_zero_edits(self):
        scheme = ScoringScheme(match=1, substitution=-4, gap_open=-6,
                               gap_extend=-1)
        assert lossless_threshold(50, scheme, 50) == 0


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def baseline(self, small_reference, simulated_reads):
        aligner = GenAxAligner(small_reference, GenAxConfig(**CONFIG))
        batch = [(s.name, s.sequence) for s in simulated_reads[:8]]
        return batch, aligner.align_batch(batch), aligner

    def test_default_threshold_counters_consistent(
        self, small_reference, baseline
    ):
        batch, __, plain = baseline
        aligner = GenAxAligner(
            small_reference, GenAxConfig(prefilter=True, **CONFIG)
        )
        aligner.align_batch(batch)
        stats = aligner.stats
        assert stats.candidates_filtered + stats.candidates_survived > 0
        assert stats.candidates_filtered == (
            aligner.prefilter_stats.candidates_rejected
        )
        assert stats.candidates_survived == (
            aligner.prefilter_stats.candidates_survived
        )
        # Only survivors reach the SillaX lanes.
        assert aligner.lane_stats.extensions == stats.candidates_survived
        assert plain.lane_stats.extensions == (
            stats.candidates_filtered + stats.candidates_survived
        )
        assert stats.prefilter_cycles > 0

    def test_lossless_threshold_preserves_mappings(
        self, small_reference, baseline
    ):
        """With the provably-safe budget, the filter never changes output."""
        batch, plain_mapped, plain = baseline
        threshold = lossless_threshold(
            len(batch[0][1]), plain.config.scheme, plain.config.min_score
        )
        aligner = GenAxAligner(
            small_reference,
            GenAxConfig(prefilter=True, prefilter_k=threshold, **CONFIG),
        )
        assert mapping_key(aligner.align_batch(batch)) == mapping_key(
            plain_mapped
        )

    def test_default_threshold_preserves_mappings_on_workload(
        self, small_reference, baseline
    ):
        """Simulated reads stay within the edit bound, so defaults agree too."""
        batch, plain_mapped, __ = baseline
        aligner = GenAxAligner(
            small_reference, GenAxConfig(prefilter=True, **CONFIG)
        )
        assert mapping_key(aligner.align_batch(batch)) == mapping_key(
            plain_mapped
        )

    def test_prefilter_stats_none_when_disabled(self, small_reference):
        aligner = GenAxAligner(small_reference, GenAxConfig(**CONFIG))
        assert aligner.prefilter_stats is None
