"""Tests for repro.pipeline.counters."""

import warnings

import pytest

from repro.pipeline.counters import (
    GenAxCounters,
    collect_counters,
    publish_counters,
)
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.pipeline.registry import backend_names, get_backend
from repro.telemetry.metrics import MetricRegistry


@pytest.fixture(scope="module")
def run_counters(small_reference, simulated_reads):
    aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=10, segment_count=3))
    aligner.align_batch([(s.name, s.sequence) for s in simulated_reads[:8]])
    return collect_counters(aligner)


class TestCounters:
    def test_read_accounting_consistent(self, run_counters):
        c = run_counters
        assert c.reads_total == 8
        assert c.reads_mapped + c.reads_unmapped == c.reads_total
        assert 0 <= c.reads_exact <= c.reads_total

    def test_fractions(self, run_counters):
        assert 0.0 <= run_counters.mapped_fraction <= 1.0
        assert 0.0 <= run_counters.exact_fraction <= 1.0

    def test_cycles_positive_when_extensions_ran(self, run_counters):
        if run_counters.extensions:
            assert run_counters.sillax_cycles > 0
            assert run_counters.sillax_cycles_per_extension > 100

    def test_seeding_counters_populated(self, run_counters):
        assert run_counters.index_lookups > 0
        assert run_counters.seeding_cycles >= 2 * run_counters.index_lookups
        assert run_counters.table_bytes_streamed > 0

    def test_as_dict_complete(self, run_counters):
        d = run_counters.as_dict()
        assert set(d) >= {
            "reads_total",
            "extensions",
            "sillax_cycles",
            "seeding_cycles",
            "table_bytes_streamed",
        }

    def test_render_readable(self, run_counters):
        text = run_counters.render()
        assert "GenAx counters" in text
        assert "reads: 8 total" in text

    def test_empty_counters(self):
        empty = GenAxCounters(
            reads_total=0, reads_mapped=0, reads_exact=0, reads_unmapped=0,
            extensions=0, sillax_cycles=0, sillax_cycles_per_extension=0.0,
            rerun_events=0, rerun_fraction=0.0, index_lookups=0,
            intersection_lookups=0, seeding_cycles=0, table_bytes_streamed=0,
        )
        assert empty.mapped_fraction == 0.0
        assert empty.exact_fraction == 0.0


class TestGracefulDegradation:
    """Satellite: collect_counters never crashes on a stats-poor backend.

    Every registered backend must survive the rollup.  Backends without
    the hardware-model surfaces (``lane_stats`` / ``seeding_stats``)
    degrade those counter groups to zeros with a RuntimeWarning instead
    of raising AttributeError.
    """

    @pytest.fixture(scope="class")
    def backend_runs(self, small_reference, simulated_reads):
        runs = {}
        for name in backend_names():
            spec = get_backend(name)
            aligner = spec.build(small_reference, spec.default_config(), None)
            aligner.align_batch(
                [(s.name, s.sequence) for s in simulated_reads[:4]]
            )
            runs[name] = aligner
        return runs

    @pytest.mark.parametrize("name", backend_names())
    def test_collect_never_raises(self, backend_runs, name):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            counters = collect_counters(backend_runs[name])
        assert counters.reads_total == 4
        assert counters.reads_mapped + counters.reads_unmapped == 4

    def test_hardware_backend_collects_silently(self, backend_runs):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            counters = collect_counters(backend_runs["genax"])
        assert counters.index_lookups > 0

    def test_software_backend_warns_and_zeros(self, backend_runs):
        with pytest.warns(RuntimeWarning) as caught:
            counters = collect_counters(backend_runs["bwamem"])
        messages = [str(w.message) for w in caught]
        assert any("lane_stats" in m for m in messages)
        assert any("seeding_stats" in m for m in messages)
        assert counters.extensions == 0
        assert counters.sillax_cycles == 0
        assert counters.index_lookups == 0
        assert counters.seeding_cycles == 0

    class _BareAligner:
        """The minimal CounterSource: stats only, nothing else."""

        def __init__(self):
            from repro.align.records import AlignmentStats

            self.stats = AlignmentStats()

    def test_minimal_counter_source_supported(self):
        with pytest.warns(RuntimeWarning):
            counters = collect_counters(self._BareAligner())
        assert counters.reads_total == 0
        assert counters.table_bytes_streamed == 0


class TestPublishCounters:
    def test_ints_become_counters_floats_become_gauges(
        self, small_reference, simulated_reads
    ):
        aligner = GenAxAligner(
            small_reference, GenAxConfig(edit_bound=10, segment_count=3)
        )
        aligner.align_batch(
            [(s.name, s.sequence) for s in simulated_reads[:4]]
        )
        counters = collect_counters(aligner)
        registry = MetricRegistry()
        publish_counters(registry, counters, backend="genax")
        assert registry.get("genax_reads_total").value == 4
        assert registry.get("genax_reads_total").kind == "counter"
        assert registry.get("genax_rerun_fraction").kind == "gauge"
        # Every as_dict entry landed, prefixed with the backend name.
        for name in counters.as_dict():
            assert f"genax_{name}" in registry
