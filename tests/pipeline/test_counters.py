"""Tests for repro.pipeline.counters."""

import pytest

from repro.pipeline.counters import GenAxCounters, collect_counters
from repro.pipeline.genax import GenAxAligner, GenAxConfig


@pytest.fixture(scope="module")
def run_counters(small_reference, simulated_reads):
    aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=10, segment_count=3))
    aligner.align_batch([(s.name, s.sequence) for s in simulated_reads[:8]])
    return collect_counters(aligner)


class TestCounters:
    def test_read_accounting_consistent(self, run_counters):
        c = run_counters
        assert c.reads_total == 8
        assert c.reads_mapped + c.reads_unmapped == c.reads_total
        assert 0 <= c.reads_exact <= c.reads_total

    def test_fractions(self, run_counters):
        assert 0.0 <= run_counters.mapped_fraction <= 1.0
        assert 0.0 <= run_counters.exact_fraction <= 1.0

    def test_cycles_positive_when_extensions_ran(self, run_counters):
        if run_counters.extensions:
            assert run_counters.sillax_cycles > 0
            assert run_counters.sillax_cycles_per_extension > 100

    def test_seeding_counters_populated(self, run_counters):
        assert run_counters.index_lookups > 0
        assert run_counters.seeding_cycles >= 2 * run_counters.index_lookups
        assert run_counters.table_bytes_streamed > 0

    def test_as_dict_complete(self, run_counters):
        d = run_counters.as_dict()
        assert set(d) >= {
            "reads_total",
            "extensions",
            "sillax_cycles",
            "seeding_cycles",
            "table_bytes_streamed",
        }

    def test_render_readable(self, run_counters):
        text = run_counters.render()
        assert "GenAx counters" in text
        assert "reads: 8 total" in text

    def test_empty_counters(self):
        empty = GenAxCounters(
            reads_total=0, reads_mapped=0, reads_exact=0, reads_unmapped=0,
            extensions=0, sillax_cycles=0, sillax_cycles_per_extension=0.0,
            rerun_events=0, rerun_fraction=0.0, index_lookups=0,
            intersection_lookups=0, seeding_cycles=0, table_bytes_streamed=0,
        )
        assert empty.mapped_fraction == 0.0
        assert empty.exact_fraction == 0.0
