"""Batch-vs-scalar dispatch identity over the new scenario profiles.

Every registered backend must produce bit-identical mappings (and
counters) whether it runs the per-read loop or the segment-major batch
path — for the long-read and paired-end read shapes, not just the
classic 101 bp workload the original identity tests cover.  Backends
run at the quick perf-matrix operating point (edit bound 12, small
candidate cap); the paper's conservative K = 40 defaults are sized for
low-error short reads and make 10%-error kilobase reads a tier-1
budget problem without changing what this test pins.
"""

import pytest

from repro.genome.reads import build_profile_reads
from repro.pipeline.bitvector import BitvectorConfig
from repro.pipeline.bwamem import BwaMemConfig
from repro.pipeline.genax import GenAxConfig
from repro.pipeline.longread import LongReadConfig
from repro.pipeline.registry import backend_names, build_aligner

PROFILES = ("nanopore", "paired_end")


def quick_config(backend):
    return {
        "genax": lambda: GenAxConfig(
            k=13, edit_bound=12, segment_count=4, max_candidates=8
        ),
        "bwamem": lambda: BwaMemConfig(k=13, band=12, max_candidates=8),
        "bitvector": lambda: BitvectorConfig(
            k=13, edit_bound=12, max_candidates=8
        ),
        "longread": lambda: LongReadConfig(k=13),
    }[backend]()


def test_every_backend_has_a_quick_config():
    for backend in backend_names():
        assert quick_config(backend) is not None


@pytest.fixture(scope="module")
def profile_reads(tiny_reference):
    reads = {}
    for profile in PROFILES:
        simulated = build_profile_reads(profile, tiny_reference, 3, seed=97)
        reads[profile] = [(s.name, s.sequence) for s in simulated]
    return reads


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("backend", backend_names())
def test_batch_matches_per_read(
    backend, profile, tiny_reference, profile_reads
):
    reads = profile_reads[profile]
    per_read = build_aligner(backend, tiny_reference, quick_config(backend))
    batch = build_aligner(backend, tiny_reference, quick_config(backend))
    singles = per_read.align_reads(reads)
    batched = batch.align_batch(reads)
    assert len(singles) == len(batched) == len(reads)
    for x, y in zip(singles, batched):
        assert x.read_name == y.read_name
        assert (x.position, x.reverse, x.score) == (
            y.position,
            y.reverse,
            y.score,
        ), (backend, profile, x.read_name)
        assert str(x.cigar) == str(y.cigar)
        assert x.mapping_quality == y.mapping_quality
    assert per_read.stats == batch.stats


@pytest.mark.parametrize("backend", backend_names())
def test_runs_are_deterministic(backend, tiny_reference, profile_reads):
    reads = profile_reads["paired_end"]
    first = build_aligner(
        backend, tiny_reference, quick_config(backend)
    ).align_reads(reads)
    second = build_aligner(
        backend, tiny_reference, quick_config(backend)
    ).align_reads(reads)
    assert [(m.position, m.reverse, m.score) for m in first] == [
        (m.position, m.reverse, m.score) for m in second
    ]
