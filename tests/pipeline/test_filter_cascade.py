"""Pipeline-level cascade contracts, every registered backend.

Three promises the filter-cascade refactor makes at the driver level:

* **losslessness** — running the full default cascade changes no mapping
  relative to the no-filter pipeline (the stages are lower bounds on the
  edit distance the extension engine enforces);
* **dispatch identity** — batch-dispatched cascade filtering and the
  per-candidate fallback produce bit-identical mappings *and* identical
  shared/per-stage counters (batching is a scheduling choice);
* **order invariance** — stage order changes cost, never verdicts, so
  any permutation of the cascade maps identically.

Plus the legacy bridge: ``GenAxConfig(prefilter=True)`` is exactly the
one-stage ``("myers",)`` cascade.
"""

import dataclasses
import itertools

import pytest

from repro.filters import DEFAULT_CASCADE
from repro.pipeline.bitvector import BitvectorAligner, BitvectorConfig
from repro.pipeline.bwamem import BwaMemConfig
from repro.pipeline.genax import GenAxConfig
from repro.pipeline.registry import backend_names, get_backend
from repro.pipeline.stages import PipelineDriver
from repro.telemetry import telemetry_session

from tests.pipeline.golden_fixtures import (
    EDIT_BOUND,
    SEGMENT_COUNT,
    mapping_rows,
)

#: Per-backend config factory taking the cascade names tuple (or None).
#: The longread backend is deliberately absent: its per-read adaptive
#: gate plays the cascade's role, and the fixed-bound stages are
#: meaningless without a backend-level ``edit_bound``/``band``.
CASCADE_CONFIGS = {
    "genax": lambda filters: GenAxConfig(
        edit_bound=EDIT_BOUND, segment_count=SEGMENT_COUNT, filters=filters
    ),
    "bwamem": lambda filters: BwaMemConfig(band=EDIT_BOUND, filters=filters),
    "bitvector": lambda filters: BitvectorConfig(
        edit_bound=EDIT_BOUND, filters=filters
    ),
}


def stats_dict(stats):
    return dataclasses.asdict(stats)


def stage_reports(aligner):
    """Per-stage counters as comparable dicts (None-safe)."""
    cascade = aligner.cascade
    if cascade is None:
        return None
    return [
        (name, dataclasses.asdict(stage)) for name, stage in cascade.report()
    ]


def build_aligner(backend, reference, filters):
    return get_backend(backend).build(
        reference, CASCADE_CONFIGS[backend](filters), None
    )


@pytest.fixture(scope="module")
def batch(simulated_reads):
    return [(s.name, s.sequence) for s in simulated_reads]


CASCADE_BACKENDS = tuple(CASCADE_CONFIGS)


def test_config_factories_cover_every_cascade_backend():
    assert set(CASCADE_CONFIGS) <= set(backend_names())
    # Only the adaptive long-read backend opts out of the cascade.
    assert set(backend_names()) - set(CASCADE_CONFIGS) == {"longread"}


@pytest.mark.parametrize("backend", CASCADE_BACKENDS)
class TestCascadeLossless:
    """Full default cascade vs no filter: bit-identical mappings."""

    def test_mappings_identical_and_work_was_done(
        self, backend, small_reference, batch
    ):
        plain = build_aligner(backend, small_reference, None)
        filtered = build_aligner(backend, small_reference, DEFAULT_CASCADE)
        assert plain.cascade is None
        assert filtered.cascade is not None
        assert mapping_rows(filtered.align_batch(batch)) == mapping_rows(
            plain.align_batch(batch)
        )
        report = dict(filtered.cascade.report())
        assert report["shouldered"].checked > 0
        # Conservation within the cascade: stage i+1 sees exactly the
        # candidates stage i admitted.  (The shared candidates_filtered /
        # candidates_survived counters also absorb the extension engine's
        # own over-budget rejections, so they are not cascade-exclusive.)
        names = list(DEFAULT_CASCADE)
        for earlier, later in zip(names, names[1:]):
            assert report[later].checked == report[earlier].survived
        cascade_rejects = sum(report[name].rejected for name in names)
        assert cascade_rejects <= filtered.stats.candidates_filtered


@pytest.mark.parametrize("backend", CASCADE_BACKENDS)
class TestCascadeDispatchIdentity:
    """Batched cascade dispatch vs per-candidate fallback, per backend."""

    def _drivers(self, backend, reference):
        batched_aligner = build_aligner(backend, reference, DEFAULT_CASCADE)
        fallback_aligner = build_aligner(backend, reference, DEFAULT_CASCADE)
        fallback = PipelineDriver(
            fallback_aligner._driver.stages, batch_dispatch=False
        )
        return batched_aligner, fallback_aligner, fallback

    def test_align_batch_identical(self, backend, small_reference, batch):
        batched_aligner, fallback_aligner, fallback = self._drivers(
            backend, small_reference
        )
        batched = batched_aligner._driver
        assert mapping_rows(batched.align_batch(batch)) == mapping_rows(
            fallback.align_batch(batch)
        )
        assert stats_dict(batched.stats) == stats_dict(fallback.stats)
        assert stage_reports(batched_aligner) == stage_reports(
            fallback_aligner
        )


class TestOrderInvariance:
    """Stage order changes cost, never the surviving mapping set."""

    def test_every_permutation_maps_identically(self, small_reference, batch):
        baseline = BitvectorAligner(
            small_reference, BitvectorConfig(edit_bound=EDIT_BOUND)
        )
        expected = mapping_rows(baseline.align_batch(batch))
        for order in itertools.permutations(DEFAULT_CASCADE):
            aligner = BitvectorAligner(
                small_reference,
                BitvectorConfig(edit_bound=EDIT_BOUND, filters=order),
            )
            assert mapping_rows(aligner.align_batch(batch)) == expected, order


class TestLegacyPrefilterBridge:
    """GenAxConfig(prefilter=True) is the one-stage myers cascade."""

    def test_prefilter_flag_equals_myers_cascade(self, small_reference, batch):
        subset = batch[:8]
        legacy = get_backend("genax").build(
            small_reference,
            GenAxConfig(
                edit_bound=EDIT_BOUND,
                segment_count=SEGMENT_COUNT,
                prefilter=True,
            ),
            None,
        )
        modern = get_backend("genax").build(
            small_reference,
            GenAxConfig(
                edit_bound=EDIT_BOUND,
                segment_count=SEGMENT_COUNT,
                filters=("myers",),
            ),
            None,
        )
        assert mapping_rows(legacy.align_batch(subset)) == mapping_rows(
            modern.align_batch(subset)
        )
        assert stats_dict(legacy.stats) == stats_dict(modern.stats)
        assert legacy.cascade is not None
        assert legacy.cascade.stage_names == ("myers",)


class TestCascadeTelemetry:
    def test_depth_histogram_observes_every_candidate(
        self, small_reference, batch
    ):
        with telemetry_session() as telemetry:
            aligner = BitvectorAligner(
                small_reference,
                BitvectorConfig(
                    edit_bound=EDIT_BOUND, filters=DEFAULT_CASCADE
                ),
            )
            aligner.align_batch(batch)
        depths = telemetry.metrics.get("pipeline_cascade_depth")
        checked = dict(aligner.cascade.report())["shouldered"].checked
        assert depths.count == checked
        stage_names = {name for __, name, __ts, __pid in telemetry.tracer.events}
        assert "filter_batch" in stage_names
