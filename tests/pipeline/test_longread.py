"""Tests for the long-read backend (repro.pipeline.longread)."""

import random

import pytest

from repro.align.records import AlignmentStats
from repro.genome.reference import make_reference
from repro.genome.sequence import random_dna
from repro.pipeline.common import Candidate
from repro.pipeline.longread import (
    AdaptiveBandedEngine,
    LongReadAligner,
    LongReadConfig,
)
from repro.pipeline.stages import AdaptivePolicy


@pytest.fixture(scope="module")
def reference():
    return make_reference(4_000, seed=83)


def mutate_indels(sequence, edits, seed):
    """Apply *edits* seeded 1-bp indels/substitutions to *sequence*."""
    rng = random.Random(seed)
    out = list(sequence)
    for _ in range(edits):
        position = rng.randrange(len(out))
        kind = rng.random()
        if kind < 0.4:
            out.insert(position, rng.choice("ACGT"))
        elif kind < 0.8:
            del out[position]
        else:
            out[position] = rng.choice("ACGT".replace(out[position], ""))
    return "".join(out)


class TestLongReadAligner:
    def test_maps_exact_kilobase_read(self, reference):
        aligner = LongReadAligner(reference)
        read = reference.sequence[400:1_400]
        result = aligner.align_read("lr0", read)
        assert not result.is_unmapped
        assert result.position == 400
        assert result.reverse is False
        assert result.score == 1_000

    def test_maps_indel_heavy_read(self, reference):
        aligner = LongReadAligner(reference)
        window = reference.sequence[1_000:2_000]
        read = mutate_indels(window, edits=60, seed=5)  # ~6% error
        result = aligner.align_read("lr1", read)
        assert not result.is_unmapped
        assert abs(result.position - 1_000) <= 60
        policy = aligner.config.policy
        assert result.score >= policy.min_score_for(len(read))

    def test_unrelated_read_stays_unmapped(self, reference):
        aligner = LongReadAligner(reference)
        read = random_dna(800, random.Random(997))
        result = aligner.align_read("lr2", read)
        assert result.is_unmapped

    def test_batch_matches_per_read(self, reference):
        window = reference.sequence
        reads = [
            ("a", window[200:900]),
            ("b", mutate_indels(window[1_200:1_900], edits=40, seed=6)),
            ("c", random_dna(400, random.Random(13))),
        ]
        per_read = LongReadAligner(reference)
        batch = LongReadAligner(reference)
        singles = per_read.align_reads(reads)
        batched = batch.align_batch(reads)
        for x, y in zip(singles, batched):
            assert (x.position, x.reverse, x.score) == (
                y.position,
                y.reverse,
                y.score,
            )
            assert str(x.cigar) == str(y.cigar)
        assert per_read.stats == batch.stats

    def test_chain_stats_exposed(self, reference):
        aligner = LongReadAligner(reference)
        aligner.align_read("lr3", reference.sequence[100:700])
        assert aligner.chain_stats.reads_seeded >= 1
        assert aligner.chain_stats.chains_emitted >= 1

    def test_shared_tables_are_installed(self, reference):
        tables = LongReadAligner.build_tables(reference, LongReadConfig().k)
        aligner = LongReadAligner(reference, tables=tables)
        assert aligner._seeder.index is tables


class TestAdaptiveBandedEngine:
    def test_gate_rejects_wrong_locus(self, reference):
        engine = AdaptiveBandedEngine(
            reference, AdaptivePolicy(), LongReadConfig().scheme
        )
        stats = AlignmentStats()
        read = random_dna(400, random.Random(29))
        candidate = Candidate(window_start=500, reverse=False, seed_length=20)
        assert engine.extend(read, candidate, stats) is None
        assert stats.candidates_filtered == 1
        assert stats.extensions == 0

    def test_true_locus_passes_gate_and_scores(self, reference):
        engine = AdaptiveBandedEngine(
            reference, AdaptivePolicy(), LongReadConfig().scheme
        )
        stats = AlignmentStats()
        read = reference.sequence[500:900]
        candidate = Candidate(window_start=500, reverse=False, seed_length=20)
        extension = engine.extend(read, candidate, stats)
        assert extension is not None
        assert extension.position == 500
        assert extension.score == 400
        assert stats.candidates_survived == 1
        assert stats.extensions == 1


class TestConfig:
    def test_chain_config_mirrors_fields(self):
        config = LongReadConfig(
            k=11, stride=5, max_candidates=7, max_diagonal_gap=32
        )
        chain = config.chain_config()
        assert chain.k == 11
        assert chain.stride == 5
        assert chain.max_chains == 7
        assert chain.max_diagonal_gap == 32


class TestAdaptivePolicyParams:
    def test_short_read_hits_the_budget_floor(self):
        params = AdaptivePolicy().params_for(101)
        assert params.min_score == 26  # ceil(0.25 * 101)
        assert params.band == params.edit_budget == 8  # floor clamp
        assert params.gate_edits == 36  # ceil(0.35 * 101)

    def test_long_read_hits_the_budget_ceiling(self):
        params = AdaptivePolicy().params_for(30_000)
        assert params.min_score == 7_500
        assert params.band == params.edit_budget == 256  # ceiling clamp
        assert params.gate_edits == 10_500

    def test_parameters_scale_monotonically(self):
        policy = AdaptivePolicy()
        lengths = [101, 500, 2_000, 10_000]
        scores = [policy.params_for(n).min_score for n in lengths]
        gates = [policy.params_for(n).gate_edits for n in lengths]
        assert scores == sorted(scores)
        assert gates == sorted(gates)

    def test_min_score_floor_is_one(self):
        assert AdaptivePolicy().min_score_for(1) == 1

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError, match="score_fraction"):
            AdaptivePolicy(score_fraction=0.0)
        with pytest.raises(ValueError, match="band_fraction"):
            AdaptivePolicy(band_fraction=1.5)
        with pytest.raises(ValueError, match="gate_fraction"):
            AdaptivePolicy(gate_fraction=-0.1)

    def test_invalid_budget_clamp_rejected(self):
        with pytest.raises(ValueError, match="edit-budget clamp"):
            AdaptivePolicy(min_edit_budget=10, max_edit_budget=5)
