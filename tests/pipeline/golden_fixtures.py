"""Golden-fixture harness for the cross-backend refactor concordance suite.

The staged-pipeline refactor (pipeline/stages.py + registry.py) promised
bit-identical output for every backend.  "Bit-identical to what?" is
answered here: the mappings and counter snapshots of the *pre-refactor*
aligners on the standard simulated fixture set were serialized to
``tests/pipeline/goldens/<backend>.json`` before the refactor landed, and
``test_backend_goldens.py`` replays every registered backend against them.

Regenerate (only when an intentional output change is reviewed):

    PYTHONPATH=src:tests python -m pipeline.golden_fixtures

The fixture set mirrors ``tests/conftest.py`` (same seeds, same sizes) but
is rebuilt locally so the goldens do not depend on pytest fixture scoping.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.align.records import AlignmentStats, MappedRead
from repro.genome.reads import ReadSimulator
from repro.genome.reference import ReferenceGenome, make_reference
from repro.genome.variants import simulate_variants

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: The operating point every golden run uses (the standard test config).
EDIT_BOUND = 12
SEGMENT_COUNT = 4
READ_COUNT = 24


def fixture_reference() -> ReferenceGenome:
    """The 20 kbp planted-repeat reference from tests/conftest.py."""
    return make_reference(20_000, seed=11)


def fixture_batch(reference: ReferenceGenome) -> List[Tuple[str, str]]:
    """The 24 simulated reads (variants + errors) from tests/conftest.py."""
    rng = random.Random(23)
    variants = simulate_variants(reference.sequence, rng)
    simulator = ReadSimulator(reference, variants, read_length=101, seed=29)
    return [(s.name, s.sequence) for s in simulator.simulate(READ_COUNT)]


def mapping_rows(mapped: Sequence[MappedRead]) -> List[List[Any]]:
    """JSON-stable projection of every mapping field the SAM writer uses."""
    return [
        [
            m.read_name,
            m.position,
            m.reverse,
            m.score,
            "*" if m.cigar is None else str(m.cigar),
            m.mapping_quality,
            m.secondary_count,
        ]
        for m in mapped
    ]


def alignment_stats_dict(stats: AlignmentStats) -> Dict[str, int]:
    return {k: int(v) for k, v in dataclasses.asdict(stats).items()}


def lane_stats_dict(lane: Any) -> Dict[str, Any]:
    """Lane counters; re-run samples are order-insensitive across shards."""
    return {
        "extensions": lane.extensions,
        "cycles": lane.cycles,
        "stream_cycles": lane.stream_cycles,
        "rerun_events": lane.rerun_events,
        "rerun_cycles": lane.rerun_cycles,
        "rerun_cycle_samples": sorted(lane.rerun_cycle_samples),
    }


def seeding_stats_dict(seeding: Any) -> Dict[str, Any]:
    return {
        "reads_processed": seeding.reads_processed,
        "table_bytes_streamed": seeding.table_bytes_streamed,
        "finder": {
            k: int(v) for k, v in dataclasses.asdict(seeding.finder).items()
        },
        "intersections": {
            k: int(v)
            for k, v in dataclasses.asdict(seeding.intersections).items()
        },
    }


def load_golden(backend: str) -> Dict[str, Any]:
    path = GOLDEN_DIR / f"{backend}.json"
    with open(path) as handle:
        data: Dict[str, Any] = json.load(handle)
    return data


def _snapshot_genax() -> Dict[str, Any]:
    from repro.pipeline.genax import GenAxAligner, GenAxConfig

    reference = fixture_reference()
    batch = fixture_batch(reference)
    aligner = GenAxAligner(
        reference,
        GenAxConfig(edit_bound=EDIT_BOUND, segment_count=SEGMENT_COUNT),
    )
    mapped = aligner.align_batch(batch)
    return {
        "backend": "genax",
        "mappings": mapping_rows(mapped),
        "alignment_stats": alignment_stats_dict(aligner.stats),
        "lane_stats": lane_stats_dict(aligner.lane_stats),
        "seeding_stats": seeding_stats_dict(aligner.seeding_stats),
    }


def _snapshot_bwamem() -> Dict[str, Any]:
    from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig

    reference = fixture_reference()
    batch = fixture_batch(reference)
    aligner = BwaMemAligner(reference, BwaMemConfig(band=EDIT_BOUND))
    mapped = [aligner.align_read(name, sequence) for name, sequence in batch]
    return {
        "backend": "bwamem",
        "mappings": mapping_rows(mapped),
        "alignment_stats": alignment_stats_dict(aligner.stats),
    }


def _snapshot_bitvector() -> Dict[str, Any]:
    from repro.pipeline.bitvector import BitvectorAligner, BitvectorConfig

    reference = fixture_reference()
    batch = fixture_batch(reference)
    aligner = BitvectorAligner(reference, BitvectorConfig(edit_bound=EDIT_BOUND))
    mapped = aligner.align_batch(batch)
    return {
        "backend": "bitvector",
        "mappings": mapping_rows(mapped),
        "alignment_stats": alignment_stats_dict(aligner.stats),
    }


def _snapshot_longread() -> Dict[str, Any]:
    from repro.pipeline.longread import LongReadAligner, LongReadConfig

    reference = fixture_reference()
    batch = fixture_batch(reference)
    aligner = LongReadAligner(reference, LongReadConfig())
    mapped = aligner.align_batch(batch)
    return {
        "backend": "longread",
        "mappings": mapping_rows(mapped),
        "alignment_stats": alignment_stats_dict(aligner.stats),
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for snapshot in (
        _snapshot_genax(),
        _snapshot_bwamem(),
        _snapshot_bitvector(),
        _snapshot_longread(),
    ):
        path = GOLDEN_DIR / f"{snapshot['backend']}.json"
        with open(path, "w") as handle:
            json.dump(snapshot, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()
