"""Tests for repro.pipeline.common."""

from repro.align.cigar import Cigar
from repro.pipeline.common import (
    Candidate,
    Extension,
    candidates_from_seeds,
    exact_match_cigar,
    select_best,
    strands,
)
from repro.seeding.accelerator import GlobalSeed


def seed(offset, length, positions):
    return GlobalSeed(read_offset=offset, length=length, positions=tuple(positions))


class TestCandidates:
    def test_seed_predicts_window_start(self):
        candidates = candidates_from_seeds([seed(10, 20, [110])], reverse=False)
        assert candidates[0].window_start == 100

    def test_agreeing_seeds_merged(self):
        candidates = candidates_from_seeds(
            [seed(0, 20, [100]), seed(30, 15, [130])], reverse=False
        )
        assert len(candidates) == 1
        assert candidates[0].seed_length == 20  # longest supporter kept

    def test_negative_window_dropped(self):
        candidates = candidates_from_seeds([seed(50, 10, [5])], reverse=False)
        assert candidates == []

    def test_cap_prefers_long_seeds(self):
        seeds = [seed(0, 10, [100]), seed(0, 40, [500]), seed(0, 25, [900])]
        candidates = candidates_from_seeds(seeds, reverse=False, max_candidates=2)
        assert [c.seed_length for c in candidates] == [40, 25]

    def test_reverse_flag_propagates(self):
        candidates = candidates_from_seeds([seed(0, 10, [100])], reverse=True)
        assert candidates[0].reverse


class TestSelectBest:
    def _extension(self, score, position, reverse=False, query_end=10):
        return Extension(
            candidate=Candidate(position, reverse, 10),
            score=score,
            position=position,
            cigar=Cigar.from_ops([(query_end, "=")]),
            query_end=query_end,
        )

    def test_highest_score_wins(self):
        best = select_best("r", 10, [self._extension(5, 0), self._extension(9, 50)], 1)
        assert best.position == 50
        assert best.score == 9

    def test_min_score_filters(self):
        best = select_best("r", 10, [self._extension(5, 0)], min_score=6)
        assert best.is_unmapped
        assert best.mapping_quality == 0

    def test_tie_break_lowest_position_forward_first(self):
        best = select_best(
            "r",
            10,
            [self._extension(7, 300), self._extension(7, 100), self._extension(7, 200)],
            1,
        )
        assert best.position == 100
        assert best.secondary_count == 2

    def test_tie_lowers_mapping_quality(self):
        unique = select_best("r", 10, [self._extension(7, 1)], 1)
        tied = select_best("r", 10, [self._extension(7, 1), self._extension(7, 2)], 1)
        assert unique.mapping_quality > tied.mapping_quality

    def test_clip_appended_to_cigar(self):
        best = select_best("r", 15, [self._extension(8, 0, query_end=10)], 1)
        assert str(best.cigar).endswith("5S")

    def test_no_extensions(self):
        assert select_best("r", 10, [], 1).is_unmapped


class TestHelpers:
    def test_exact_match_cigar(self):
        assert str(exact_match_cigar(101)) == "101="

    def test_strands(self):
        pairs = strands("AACG")
        assert pairs[0] == ("AACG", False)
        assert pairs[1] == ("CGTT", True)
