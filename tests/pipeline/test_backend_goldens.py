"""Golden-fixture bit-identity: every backend vs its pre-refactor output.

The staged-pipeline refactor's acceptance criterion: for every registered
backend, SAM-visible mappings and counter snapshots are bit-identical to
the pre-refactor aligners' on the standard simulated fixture set — serial
per-read, serial segment-major batch, and through ``ParallelAligner`` at
jobs=1 and jobs=4 (counters equal up to the audited shard-variant
allowlist).  Goldens were captured *before* the refactor; see
``tests/pipeline/golden_fixtures.py`` for the regeneration protocol.
"""

import pytest

from repro.analysis.config import shard_variant_counters
from repro.parallel import ParallelAligner
from repro.pipeline.bitvector import BitvectorConfig
from repro.pipeline.bwamem import BwaMemConfig
from repro.pipeline.genax import GenAxConfig
from repro.pipeline.longread import LongReadConfig
from repro.pipeline.registry import backend_names, get_backend

from tests.pipeline.golden_fixtures import (
    EDIT_BOUND,
    SEGMENT_COUNT,
    alignment_stats_dict,
    fixture_batch,
    fixture_reference,
    lane_stats_dict,
    load_golden,
    mapping_rows,
    seeding_stats_dict,
)

#: The golden operating point per backend (mirrors golden_fixtures.py).
CONFIGS = {
    "genax": lambda: GenAxConfig(edit_bound=EDIT_BOUND, segment_count=SEGMENT_COUNT),
    "bwamem": lambda: BwaMemConfig(band=EDIT_BOUND),
    "bitvector": lambda: BitvectorConfig(edit_bound=EDIT_BOUND),
    "longread": lambda: LongReadConfig(),
}


def test_every_registered_backend_has_a_golden():
    """A new backend must ship a golden + config before it can register."""
    for name in backend_names():
        assert name in CONFIGS, f"add a golden config for backend {name!r}"
        assert load_golden(name)["backend"] == name


@pytest.fixture(scope="module")
def reference():
    return fixture_reference()


@pytest.fixture(scope="module")
def batch(reference):
    return fixture_batch(reference)


@pytest.mark.parametrize("backend", backend_names())
class TestSerialGoldens:
    def test_batch_mappings_match_golden(self, backend, reference, batch):
        spec = get_backend(backend)
        aligner = spec.build(reference, CONFIGS[backend](), None)
        mapped = aligner.align_batch(batch)
        assert mapping_rows(mapped) == load_golden(backend)["mappings"]

    def test_per_read_mappings_match_golden(self, backend, reference, batch):
        spec = get_backend(backend)
        aligner = spec.build(reference, CONFIGS[backend](), None)
        mapped = aligner.align_reads(batch)
        assert mapping_rows(mapped) == load_golden(backend)["mappings"]

    def test_alignment_stats_match_golden(self, backend, reference, batch):
        spec = get_backend(backend)
        aligner = spec.build(reference, CONFIGS[backend](), None)
        aligner.align_batch(batch)
        assert (
            alignment_stats_dict(aligner.stats)
            == load_golden(backend)["alignment_stats"]
        )


class TestGenAxHardwareCounters:
    """The accelerator's lane/seeding counters, pinned bit-for-bit."""

    def test_lane_stats_match_golden(self, reference, batch):
        aligner = get_backend("genax").build(reference, CONFIGS["genax"](), None)
        aligner.align_batch(batch)
        assert (
            lane_stats_dict(aligner.lane_stats)
            == load_golden("genax")["lane_stats"]
        )

    def test_seeding_stats_match_golden(self, reference, batch):
        aligner = get_backend("genax").build(reference, CONFIGS["genax"](), None)
        aligner.align_batch(batch)
        assert (
            seeding_stats_dict(aligner.seeding_stats)
            == load_golden("genax")["seeding_stats"]
        )


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("jobs", [1, 4])
class TestParallelGoldens:
    def test_sharded_mappings_match_golden(self, backend, jobs, reference, batch):
        parallel = ParallelAligner(
            reference, CONFIGS[backend](), jobs=jobs, backend=backend
        )
        mapped = parallel.align_batch(batch)
        assert mapping_rows(mapped) == load_golden(backend)["mappings"]

    def test_sharded_counters_match_golden(self, backend, jobs, reference, batch):
        """Merged counters equal the golden snapshot, except the audited
        shard-variant counters, which must strictly grow under sharding."""
        parallel = ParallelAligner(
            reference, CONFIGS[backend](), jobs=jobs, backend=backend
        )
        parallel.align_batch(batch)
        golden = load_golden(backend)
        assert alignment_stats_dict(parallel.stats) == golden["alignment_stats"]
        if backend != "genax":
            return
        merged_lanes = lane_stats_dict(parallel.lane_stats)
        assert merged_lanes == golden["lane_stats"]
        merged_seeding = seeding_stats_dict(parallel.seeding_stats)
        golden_seeding = golden["seeding_stats"]
        variant = shard_variant_counters()
        for key, golden_value in golden_seeding.items():
            if key in variant:
                if jobs == 1:
                    # One in-process chunk: no re-streaming, exact match.
                    assert merged_seeding[key] == golden_value
                else:
                    assert merged_seeding[key] > golden_value
            else:
                assert merged_seeding[key] == golden_value, key
