"""Tests for repro.pipeline.assembly_aligner (multi-contig mapping)."""

import pytest

from repro.genome.assembly import Assembly, Contig
from repro.genome.reference import make_reference
from repro.pipeline.assembly_aligner import AssemblyAligner
from repro.pipeline.bwamem import BwaMemConfig
from repro.pipeline.genax import GenAxConfig


@pytest.fixture(scope="module")
def assembly():
    chr1 = make_reference(6_000, seed=61, name="chr1").sequence
    chr2 = make_reference(4_000, seed=62, name="chr2").sequence
    return Assembly([Contig("chr1", chr1), Contig("chr2", chr2)])


@pytest.fixture(scope="module")
def aligner(assembly):
    return AssemblyAligner(
        assembly, GenAxConfig(edit_bound=10, segment_count=2)
    )


class TestAssemblyAligner:
    def test_maps_into_first_contig(self, assembly, aligner):
        read = assembly.contig("chr1").sequence[500:601]
        mapping = aligner.align_read("r1", read)
        assert mapping.contig == "chr1"
        assert mapping.offset == 500

    def test_maps_into_second_contig(self, assembly, aligner):
        read = assembly.contig("chr2").sequence[1000:1101]
        mapping = aligner.align_read("r2", read)
        assert mapping.contig == "chr2"
        assert mapping.offset == 1000

    def test_boundary_chimera_rejected(self, assembly):
        """A read stitched across the contig junction must not map there."""
        chr1 = assembly.contig("chr1").sequence
        chr2 = assembly.contig("chr2").sequence
        chimeric = chr1[-50:] + chr2[:51]
        aligner = AssemblyAligner(assembly, GenAxConfig(edit_bound=10, segment_count=2))
        mapping = aligner.align_read("chimera", chimeric)
        if not mapping.is_unmapped:
            # If mapped, it must be a genuine single-contig placement, not
            # the concatenation artifact.
            span_start = assembly.contig_start(mapping.contig) + mapping.offset
            assert not assembly.crosses_boundary(span_start, span_start + 101)

    def test_unmapped_read(self, aligner):
        mapping = aligner.align_read("junk", "AT" * 50 + "A")
        assert mapping.is_unmapped or mapping.score >= 30

    def test_bwamem_backend(self, assembly):
        aligner = AssemblyAligner(assembly, BwaMemConfig(band=10))
        chr1 = assembly.contig("chr1").sequence

        def occurrences(window: str) -> int:
            # Overlap-aware (str.count misses overlapping tandem copies).
            return sum(
                1
                for i in range(len(chr1) - len(window) + 1)
                if chr1[i : i + len(window)] == window
            )

        # Pick a window that occurs exactly once (the builder plants
        # repeats, so some windows legitimately have several placements).
        start = next(
            s for s in range(100, 3000, 100) if occurrences(chr1[s : s + 101]) == 1
        )
        mapping = aligner.align_read("r", chr1[start : start + 101])
        assert mapping.contig == "chr1"
        assert mapping.offset == start

    def test_batch(self, assembly, aligner):
        reads = [
            ("a", assembly.contig("chr1").sequence[2000:2101]),
            ("b", assembly.contig("chr2").sequence[2000:2101]),
        ]
        mappings = aligner.align_reads(reads)
        assert [m.contig for m in mappings] == ["chr1", "chr2"]
