"""Tests for the pipeline backend registry (repro.pipeline.registry)."""

from pathlib import Path

import pytest

from repro.align.records import AlignmentStats
from repro.pipeline.bitvector import BitvectorConfig
from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.pipeline.registry import (
    GENAX_BACKEND,
    BackendRunStats,
    backend_for_config,
    backend_names,
    build_aligner,
    get_backend,
    register_backend,
    render_backend_table,
)
from repro.seeding.accelerator import SeedingStats
from repro.sillax.lane import LaneStats

README = Path(__file__).parents[2] / "README.md"


class TestLookup:
    def test_registered_names_in_order(self):
        assert backend_names() == ("genax", "bwamem", "bitvector", "longread")

    def test_get_backend_round_trip(self):
        for name in backend_names():
            assert get_backend(name).name == name

    def test_unknown_backend_lists_known(self):
        with pytest.raises(ValueError, match="unknown backend.*bwamem.*genax"):
            get_backend("minimap2")

    def test_backend_for_config(self):
        assert backend_for_config(GenAxConfig()).name == "genax"
        assert backend_for_config(BwaMemConfig()).name == "bwamem"
        assert backend_for_config(BitvectorConfig()).name == "bitvector"
        # Both kernel variants share one config type -> one backend name.
        assert (
            backend_for_config(BitvectorConfig(kernel="scalar")).name
            == "bitvector"
        )

    def test_backend_for_unknown_config_type(self):
        with pytest.raises(ValueError, match="no registered backend"):
            backend_for_config(object())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(GENAX_BACKEND)


class TestFactories:
    def test_build_aligner_with_default_config(self, tiny_reference):
        aligner = build_aligner("bwamem", tiny_reference)
        assert isinstance(aligner, BwaMemAligner)
        assert isinstance(aligner.config, BwaMemConfig)

    def test_build_aligner_reuses_prepared_tables(self, tiny_reference):
        spec = get_backend("genax")
        config = GenAxConfig(segment_count=2)
        shared = spec.prepare(tiny_reference, config)
        aligner = spec.build(tiny_reference, config, shared)
        assert isinstance(aligner, GenAxAligner)
        # The prepared segment tables are installed, not rebuilt.
        assert aligner.seeder.tables is shared

    def test_collect_snapshots_counters(self, tiny_reference):
        for name, expects_lanes in (
            ("genax", True),
            ("bwamem", False),
            ("bitvector", False),
        ):
            spec = get_backend(name)
            aligner = build_aligner(name, tiny_reference)
            aligner.align_read("r", tiny_reference.sequence[100:201])
            bundle = spec.collect(aligner)
            assert bundle.backend == name
            assert bundle.alignment.reads_total == 1
            assert (bundle.lanes is not None) == expects_lanes
            assert (bundle.seeding is not None) == expects_lanes


class TestBackendRunStats:
    def test_merge_rejects_backend_mismatch(self):
        genax = BackendRunStats(backend="genax")
        bwamem = BackendRunStats(backend="bwamem")
        with pytest.raises(ValueError, match="cannot merge"):
            genax.merge(bwamem)

    def test_merge_is_additive(self):
        left = BackendRunStats(
            backend="genax", alignment=AlignmentStats(reads_total=2)
        )
        right = BackendRunStats(
            backend="genax", alignment=AlignmentStats(reads_total=3)
        )
        left.merge(right)
        assert left.alignment.reads_total == 5

    def test_merge_materialises_optional_sections(self):
        bare = BackendRunStats(backend="genax")
        assert bare.lanes is None and bare.seeding is None
        populated = BackendRunStats(
            backend="genax",
            lanes=LaneStats(extensions=4),
            seeding=SeedingStats(reads_processed=7),
        )
        bare.merge(populated)
        assert bare.lanes is not None and bare.lanes.extensions == 4
        assert bare.seeding is not None and bare.seeding.reads_processed == 7

    def test_merge_from_empty_keeps_sections_none(self):
        bare = BackendRunStats(backend="bwamem")
        bare.merge(BackendRunStats(backend="bwamem"))
        assert bare.lanes is None and bare.seeding is None


class TestRenderedTable:
    def test_table_lists_every_backend(self):
        table = render_backend_table()
        for name in backend_names():
            assert f"| `{name}` |" in table

    def test_readme_table_matches_registry(self):
        """The README embeds the rendered table verbatim; regenerate with
        ``PYTHONPATH=src python -m repro.pipeline.registry`` on drift."""
        assert render_backend_table() in README.read_text()
