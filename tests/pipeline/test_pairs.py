"""Tests for paired-end mate rescue (repro.pipeline.pairs)."""

import random

import pytest

from repro.align.records import AlignmentStats, MappedRead
from repro.genome.sequence import random_dna, reverse_complement
from repro.pipeline.pairs import (
    RESCUE_MAPQ,
    PairRescuer,
    PairStats,
    rescue_candidate_starts,
    rescue_search,
    resolve_pair,
)


@pytest.fixture(scope="module")
def genome():
    return random_dna(600, random.Random(71))


def mapped(name, position, reverse=False, score=30):
    return MappedRead(
        read_name=name, position=position, reverse=reverse, score=score
    )


def unmapped(name):
    return MappedRead(read_name=name, position=-1, reverse=False, score=0)


class TestCandidateStarts:
    def test_interval_around_implied_start(self):
        # A 5-base pattern ending at 10 within 1 edit started in [4, 6].
        assert rescue_candidate_starts((10,), 5, 1, 100) == [4, 5, 6]

    def test_clamped_to_text(self):
        # end=2 within 3 edits: the implied interval [-6, 0] clamps to [0].
        assert rescue_candidate_starts((2,), 5, 3, 100) == [0]
        # Within 2 edits every implied start is negative; nothing remains.
        assert rescue_candidate_starts((2,), 5, 2, 100) == []

    def test_union_over_ends_is_sorted_and_deduped(self):
        starts = rescue_candidate_starts((10, 11), 5, 1, 100)
        assert starts == sorted(set(starts)) == [4, 5, 6, 7]

    def test_cap_bounds_enumeration(self):
        starts = rescue_candidate_starts((50,), 10, 30, 200, cap=5)
        assert len(starts) == 5


class TestRescueSearch:
    def test_finds_planted_pattern_exactly(self, genome):
        pattern = genome[250:290]
        found = rescue_search(genome, pattern, k=4)
        assert found is not None
        start, alignment = found
        assert start + alignment.reference_start == 250
        assert alignment.score == 40  # perfect match, 1 point per base

    def test_tolerates_edits_within_budget(self, genome):
        pattern = list(genome[100:140])
        pattern[5] = "A" if pattern[5] != "A" else "C"
        del pattern[20]
        found = rescue_search(genome, "".join(pattern), k=4)
        assert found is not None
        _, alignment = found
        assert alignment.score > 0

    def test_unmatchable_pattern_returns_none(self, genome):
        pattern = random_dna(40, random.Random(9))
        assert rescue_search(genome, pattern, k=2) is None

    def test_empty_pattern_returns_none(self, genome):
        assert rescue_search(genome, "", k=2) is None

    def test_charges_dp_work_to_stats(self, genome):
        stats = AlignmentStats()
        rescue_search(genome, genome[50:80], k=2, stats=stats)
        assert stats.extensions > 0
        assert stats.dp_cells > 0


class TestMateWindow:
    def test_forward_anchor_predicts_reversed_mate(self, genome):
        rescuer = PairRescuer(genome, insert_mean=100, insert_slack=10)
        low, high, mate_reverse = rescuer.mate_window(
            anchor_position=100,
            anchor_reverse=False,
            anchor_length=20,
            mate_length=20,
        )
        # center = 100 + 100 - 20 = 180
        assert (low, high) == (170, 190)
        assert mate_reverse is True

    def test_reverse_anchor_predicts_forward_mate(self, genome):
        rescuer = PairRescuer(genome, insert_mean=100, insert_slack=10)
        low, high, mate_reverse = rescuer.mate_window(
            anchor_position=300,
            anchor_reverse=True,
            anchor_length=20,
            mate_length=20,
        )
        # center = 300 + 20 - 100 = 220
        assert (low, high) == (210, 230)
        assert mate_reverse is False

    def test_window_clamped_to_reference(self, genome):
        rescuer = PairRescuer(genome, insert_mean=100, insert_slack=200)
        low, high, _ = rescuer.mate_window(10, False, 20, 20)
        assert low == 0
        assert high <= len(genome) - 20


class TestRescue:
    def test_recovers_missing_mate_in_insert_window(self, genome):
        # Fragment at 200 with insert 100, 30 bp ends: the forward anchor
        # is ref[200:230], the true mate is revcomp(ref[270:300]).
        anchor = mapped("pair/1", 200, reverse=False, score=30)
        mate_sequence = reverse_complement(genome[270:300])
        rescuer = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=15
        )
        rescued = rescuer.rescue(anchor, 30, "pair/2", mate_sequence)
        assert rescued is not None
        assert rescued.position == 270
        assert rescued.reverse is True
        assert rescued.score == 30
        assert rescued.mapping_quality == RESCUE_MAPQ
        assert rescuer.stats.rescued == 1
        assert rescuer.stats.rescue_attempts == 1

    def test_rescue_from_reverse_anchor(self, genome):
        # The reverse anchor is the fragment tail; the mate is the
        # forward head at fragment_start = 270 + 30 - 100 = 200.
        anchor = mapped("pair/2", 270, reverse=True, score=30)
        rescuer = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=15
        )
        rescued = rescuer.rescue(anchor, 30, "pair/1", genome[200:230])
        assert rescued is not None
        assert rescued.position == 200
        assert rescued.reverse is False

    def test_unrelated_mate_stays_unmapped(self, genome):
        anchor = mapped("pair/1", 200, reverse=False, score=30)
        noise = random_dna(30, random.Random(13))
        rescuer = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=15
        )
        assert rescuer.rescue(anchor, 30, "pair/2", noise) is None
        assert rescuer.stats.rescued == 0
        assert rescuer.stats.rescue_attempts == 1

    def test_min_score_floor_rejects_weak_placements(self, genome):
        anchor = mapped("pair/1", 200, reverse=False, score=30)
        mate_sequence = reverse_complement(genome[270:300])
        strict = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=31
        )
        assert strict.rescue(anchor, 30, "pair/2", mate_sequence) is None


class TestIsProper:
    @pytest.fixture()
    def rescuer(self, genome):
        return PairRescuer(genome, insert_mean=100, insert_slack=20)

    def test_fr_pair_within_window_is_proper(self, rescuer):
        first = mapped("a/1", 200, reverse=False)
        second = mapped("a/2", 270, reverse=True)
        assert rescuer.is_proper(first, second, 30, 30) is True

    def test_same_strand_is_not_proper(self, rescuer):
        first = mapped("a/1", 200, reverse=False)
        second = mapped("a/2", 270, reverse=False)
        assert rescuer.is_proper(first, second, 30, 30) is False

    def test_unmapped_mate_is_not_proper(self, rescuer):
        assert (
            rescuer.is_proper(mapped("a/1", 200), unmapped("a/2"), 30, 30)
            is False
        )

    def test_insert_outside_window_is_not_proper(self, rescuer):
        first = mapped("a/1", 200, reverse=False)
        second = mapped("a/2", 500, reverse=True)
        assert rescuer.is_proper(first, second, 30, 30) is False


class TestResolvePair:
    def test_both_mapped_counts_without_rescue(self, genome):
        rescuer = PairRescuer(genome, insert_mean=100, insert_slack=20)
        result = resolve_pair(
            mapped("a/1", 200, reverse=False),
            mapped("a/2", 270, reverse=True),
            genome[200:230],
            reverse_complement(genome[270:300]),
            rescuer,
        )
        assert not result.rescued_first and not result.rescued_second
        assert result.proper is True
        assert rescuer.stats.pairs_total == 1
        assert rescuer.stats.both_mapped == 1
        assert rescuer.stats.rescue_attempts == 0
        assert rescuer.stats.proper_pairs == 1

    def test_rescues_unmapped_second_mate(self, genome):
        rescuer = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=15
        )
        result = resolve_pair(
            mapped("a/1", 200, reverse=False),
            unmapped("a/2"),
            genome[200:230],
            reverse_complement(genome[270:300]),
            rescuer,
        )
        assert result.rescued_second is True
        assert result.second.position == 270
        assert result.proper is True
        assert rescuer.stats.both_mapped == 1
        assert rescuer.stats.rescued == 1

    def test_rescues_unmapped_first_mate(self, genome):
        rescuer = PairRescuer(
            genome, insert_mean=100, insert_slack=20, min_score=15
        )
        result = resolve_pair(
            unmapped("a/1"),
            mapped("a/2", 270, reverse=True),
            genome[200:230],
            reverse_complement(genome[270:300]),
            rescuer,
        )
        assert result.rescued_first is True
        assert result.first.position == 200

    def test_no_rescuer_is_a_passthrough(self, genome):
        first = mapped("a/1", 200)
        second = unmapped("a/2")
        result = resolve_pair(first, second, "ACGT", "ACGT", None)
        assert result.first is first and result.second is second
        assert result.proper is False


class TestPairStats:
    def test_merge_is_additive(self):
        left = PairStats(pairs_total=2, rescued=1, proper_pairs=1)
        right = PairStats(pairs_total=3, rescued=2, both_mapped=3)
        left.merge(right)
        assert left.pairs_total == 5
        assert left.rescued == 3
        assert left.both_mapped == 3
        assert left.proper_pairs == 1


class TestValidation:
    def test_insert_mean_floor(self, genome):
        with pytest.raises(ValueError, match="insert_mean"):
            PairRescuer(genome, insert_mean=0)

    def test_negative_slack(self, genome):
        with pytest.raises(ValueError, match="insert_slack"):
            PairRescuer(genome, insert_slack=-1)
