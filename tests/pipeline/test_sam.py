"""Tests for repro.pipeline.sam."""

import pytest

from repro.align.cigar import Cigar
from repro.align.records import MappedRead
from repro.genome.reads import Read
from repro.genome.reference import ReferenceGenome
from repro.pipeline.sam import FLAG_REVERSE, FLAG_UNMAPPED, sam_header, sam_record, write_sam


def mapped(position=100, reverse=False, score=50):
    return MappedRead(
        read_name="r1",
        position=position,
        reverse=reverse,
        score=score,
        cigar=Cigar.from_string("4="),
        mapping_quality=60,
    )


class TestSamRecord:
    def test_basic_fields(self):
        line = sam_record(mapped(), Read("r1", "ACGT", "IIII"), "chr1")
        fields = line.split("\t")
        assert fields[0] == "r1"
        assert fields[1] == "0"
        assert fields[2] == "chr1"
        assert fields[3] == "101"  # 1-based
        assert fields[5] == "4="
        assert fields[9] == "ACGT"
        assert fields[11] == "AS:i:50"

    def test_reverse_flag_and_revcomp(self):
        line = sam_record(mapped(reverse=True), Read("r1", "AACG", "IIII"), "chr1")
        fields = line.split("\t")
        assert int(fields[1]) & FLAG_REVERSE
        assert fields[9] == "CGTT"
        # Quality string is reversed alongside.
        assert fields[10] == "IIII"

    def test_unmapped_record(self):
        record = MappedRead("r1", position=-1, reverse=False, score=0, mapping_quality=0)
        fields = sam_record(record, Read("r1", "ACGT")).split("\t")
        assert int(fields[1]) & FLAG_UNMAPPED
        assert fields[2] == "*"
        assert fields[3] == "0"
        assert fields[5] == "*"

    def test_missing_quality_rendered_as_star(self):
        line = sam_record(mapped(), Read("r1", "ACGT"), "chr1")
        assert line.split("\t")[10] == "*"


class TestSamParsing:
    def test_roundtrip_mapped(self):
        from repro.pipeline.sam import parse_sam_line

        original = mapped(position=41, reverse=False, score=77)
        line = sam_record(original, Read("r1", "ACGT", "IIII"), "chr1")
        parsed = parse_sam_line(line)
        assert parsed.position == 41
        assert parsed.score == 77
        assert str(parsed.cigar) == "4="
        assert not parsed.reverse

    def test_roundtrip_reverse_flag(self):
        from repro.pipeline.sam import parse_sam_line

        line = sam_record(mapped(reverse=True), Read("r1", "ACGT"), "chr1")
        assert parse_sam_line(line).reverse

    def test_roundtrip_unmapped(self):
        from repro.pipeline.sam import parse_sam_line

        record = MappedRead("r1", position=-1, reverse=False, score=0, mapping_quality=0)
        parsed = parse_sam_line(sam_record(record, Read("r1", "ACGT")))
        assert parsed.is_unmapped
        assert parsed.cigar is None

    def test_short_line_rejected(self):
        from repro.pipeline.sam import parse_sam_line

        with pytest.raises(ValueError):
            parse_sam_line("r1\t0\tchr1")

    def test_read_sam_file(self, tmp_path):
        from repro.pipeline.sam import read_sam

        ref = ReferenceGenome("ACGTACGTACGT", name="toy")
        reads = [Read("r1", "ACGT", "IIII"), Read("r2", "GTAC", "IIII")]
        records = [mapped(position=0), mapped(position=2, score=9)]
        path = tmp_path / "two.sam"
        write_sam(path, ref, records, reads)
        parsed = read_sam(path)
        assert [p.position for p in parsed] == [0, 2]
        assert parsed[1].score == 9


class TestSamFile:
    def test_header(self):
        ref = ReferenceGenome("ACGT" * 10, name="toy")
        header = sam_header(ref)
        assert "@SQ\tSN:toy\tLN:40" in header

    def test_write_sam(self, tmp_path):
        ref = ReferenceGenome("ACGTACGTACGT", name="toy")
        reads = [Read("r1", "ACGT", "IIII")]
        path = tmp_path / "out.sam"
        count = write_sam(path, ref, [mapped(position=0)], reads)
        assert count == 1
        lines = path.read_text().splitlines()
        assert lines[0].startswith("@HD")
        assert lines[-1].startswith("r1\t")
