"""Tests for GenAx segment-major batch alignment."""

import pytest

from repro.model.power import GenAxPowerModel
from repro.pipeline.genax import GenAxAligner, GenAxConfig


@pytest.fixture(scope="module")
def read_batch(small_reference, simulated_reads):
    return [(s.name, s.sequence) for s in simulated_reads[:10]]


class TestAlignBatch:
    def test_identical_to_per_read_mode(self, small_reference, read_batch):
        per_read = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        batch = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        a = per_read.align_reads(read_batch)
        b = batch.align_batch(read_batch)
        for x, y in zip(a, b):
            assert (x.position, x.reverse, x.score) == (y.position, y.reverse, y.score)
            assert str(x.cigar) == str(y.cigar)

    def test_tables_streamed_once_per_batch(self, small_reference, read_batch):
        """§VI: segment-major order streams each segment's tables once."""
        per_read = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        batch = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        per_read.align_reads(read_batch)
        batch.align_batch(read_batch)
        assert (
            batch.seeding_stats.table_bytes_streamed
            < per_read.seeding_stats.table_bytes_streamed / 5
        )

    def test_stats_counted_once_per_read(self, small_reference, read_batch):
        aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        aligner.align_batch(read_batch)
        assert aligner.stats.reads_total == len(read_batch)
        assert (
            aligner.stats.reads_mapped + aligner.stats.reads_unmapped
            == len(read_batch)
        )

    def test_alignment_stats_identical_to_per_read_mode(
        self, small_reference, read_batch
    ):
        """Per-read and batch modes count the same events — including
        ``reads_exact``, which once diverged because per-read mode counted
        a read twice when both strands matched exactly."""
        per_read = GenAxAligner(
            small_reference, GenAxConfig(edit_bound=12, segment_count=4)
        )
        batch = GenAxAligner(
            small_reference, GenAxConfig(edit_bound=12, segment_count=4)
        )
        per_read.align_reads(read_batch)
        batch.align_batch(read_batch)
        assert per_read.stats == batch.stats
        assert per_read.stats.reads_exact == batch.stats.reads_exact

    def test_empty_batch(self, small_reference):
        aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=8, segment_count=2))
        assert aligner.align_batch([]) == []


class TestEnergyModel:
    def test_energy_per_read_microjoules(self):
        model = GenAxPowerModel()
        # ~15.4 W at ~4M reads/s -> ~3.8 uJ per read.
        assert model.energy_per_read_uj() == pytest.approx(3.8, rel=0.05)

    def test_energy_efficiency_combines_headlines(self):
        model = GenAxPowerModel()
        # 31.7x throughput x 12x power.
        assert model.energy_efficiency_vs_cpu() == pytest.approx(31.7 * 12.0, rel=0.02)

    def test_invalid_throughput(self):
        with pytest.raises(ValueError):
            GenAxPowerModel().energy_per_read_uj(0)
