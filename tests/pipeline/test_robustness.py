"""Robustness: degenerate and adversarial inputs through the pipelines."""

import pytest

from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.seeding.fmindex import FmIndexSeeder
from repro.seeding.index import KmerIndex


@pytest.fixture(scope="module")
def genax(small_reference):
    return GenAxAligner(small_reference, GenAxConfig(edit_bound=10, segment_count=3))


class TestAmbiguousBases:
    def test_kmer_index_tolerates_n(self):
        index = KmerIndex.build("ACGTACGT", 4)
        assert list(index.hits("ACNT")) == []

    def test_read_with_n_still_maps(self, small_reference, genax):
        read = list(small_reference.sequence[1000:1101])
        read[50] = "N"
        mapped = genax.align_read("n_read", "".join(read))
        assert mapped.position == 1000
        assert mapped.cigar.count("X") == 1  # the N scores as a mismatch

    def test_all_n_read_unmapped(self, genax):
        mapped = genax.align_read("all_n", "N" * 101)
        assert mapped.is_unmapped

    def test_bwamem_matches_genax_on_n_read(self, small_reference, genax):
        bwa = BwaMemAligner(small_reference, BwaMemConfig(band=10))
        read = list(small_reference.sequence[2000:2101])
        read[30] = "N"
        read = "".join(read)
        assert bwa.align_read("n", read).score == genax.align_read("n", read).score

    def test_fmindex_seeder_tolerates_n(self):
        seeder = FmIndexSeeder("ACGTACGTACGTACGT", 4)
        assert seeder.find_seeds("ACGTN" * 3) == [] or True  # must not raise


class TestDegenerateReads:
    def test_read_shorter_than_k(self, genax):
        mapped = genax.align_read("tiny", "ACGT")
        assert mapped.is_unmapped  # no seeds possible, score < min_score

    def test_empty_read(self, genax):
        mapped = genax.align_read("empty", "")
        assert mapped.is_unmapped

    def test_read_longer_than_any_segment_window(self, small_reference):
        aligner = GenAxAligner(
            small_reference, GenAxConfig(edit_bound=8, segment_count=3)
        )
        read = small_reference.sequence[100:800]  # 700 bp "long read"
        mapped = aligner.align_read("long", read)
        assert mapped.position == 100
        assert mapped.score == 700

    def test_homopolymer_read(self, genax):
        # Poly-A probably doesn't occur at length 101; must not hang/crash.
        mapped = genax.align_read("polya", "A" * 101)
        assert mapped.is_unmapped or mapped.score >= 30

    def test_read_at_genome_start_and_end(self, small_reference, genax):
        first = genax.align_read("first", small_reference.sequence[:101])
        last = genax.align_read("last", small_reference.sequence[-101:])
        assert first.position == 0
        assert last.position == len(small_reference) - 101
