"""Integration: GenAx vs BWA-MEM-like concordance (§VIII-A validation).

The paper validated SillaX against BWA-MEM for the whole GRCh38 read set
and saw identical scores with 0.0023% positional variance from tie-breaks.
This is the scaled-down version of that experiment, run as a test: every
simulated read must receive the *same score* from both pipelines, and
positions must agree except for equal-score ties.
"""

import pytest

from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig
from repro.pipeline.genax import GenAxAligner, GenAxConfig


@pytest.fixture(scope="module")
def pipelines(small_reference):
    bwa = BwaMemAligner(small_reference, BwaMemConfig(band=12))
    genax = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
    return bwa, genax


class TestConcordance:
    def test_scores_identical(self, pipelines, simulated_reads):
        bwa, genax = pipelines
        for sim in simulated_reads:
            a = bwa.align_read(sim.name, sim.sequence)
            b = genax.align_read(sim.name, sim.sequence)
            assert a.score == b.score, f"{sim.name}: {a.score} != {b.score}"

    def test_positions_agree_or_tie(self, pipelines, simulated_reads):
        bwa, genax = pipelines
        disagreements = 0
        for sim in simulated_reads:
            a = bwa.align_read(sim.name, sim.sequence)
            b = genax.align_read(sim.name, sim.sequence)
            if a.position != b.position or a.reverse != b.reverse:
                # Only equal-score ties may differ (the paper's caveat).
                assert a.score == b.score
                disagreements += 1
        assert disagreements <= len(simulated_reads) // 4

    def test_mapped_fraction_matches(self, pipelines, simulated_reads):
        bwa, genax = pipelines
        a = sum(
            0 if bwa.align_read(s.name, s.sequence).is_unmapped else 1
            for s in simulated_reads
        )
        b = sum(
            0 if genax.align_read(s.name, s.sequence).is_unmapped else 1
            for s in simulated_reads
        )
        assert a == b
