"""Tests for repro.pipeline.bwamem."""

import pytest

from repro.genome.sequence import reverse_complement
from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig


@pytest.fixture(scope="module")
def aligner(small_reference):
    return BwaMemAligner(small_reference, BwaMemConfig(band=12))


class TestBwaMem:
    def test_exact_read_maps_to_origin(self, small_reference, aligner):
        read = small_reference.sequence[700:801]
        mapped = aligner.align_read("exact", read)
        assert mapped.position == 700
        assert not mapped.reverse
        assert mapped.score == 101
        assert str(mapped.cigar) == "101="

    def test_exact_fast_path_counted(self, small_reference):
        aligner = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        aligner.align_read("exact", small_reference.sequence[50:151])
        assert aligner.stats.reads_exact >= 1

    def test_exact_read_counted_once_not_per_strand(self, small_reference):
        """Regression: reads_exact used to be bumped once per *strand*,
        double-counting reads; the shared driver counts once per read."""
        aligner = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        aligner.align_read("exact", small_reference.sequence[50:151])
        assert aligner.stats.reads_exact == 1

    def test_align_batch_matches_align_reads(self, small_reference):
        reads = [
            ("a", small_reference.sequence[100:201]),
            ("b", small_reference.sequence[400:501]),
        ]
        per_read = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        batch = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        rows = lambda mapped: [
            (m.read_name, m.position, m.reverse, m.score, str(m.cigar))
            for m in mapped
        ]
        assert rows(per_read.align_reads(reads)) == rows(batch.align_batch(reads))
        assert per_read.stats == batch.stats

    def test_read_with_substitution(self, small_reference, aligner):
        read = list(small_reference.sequence[1200:1301])
        read[50] = "A" if read[50] != "A" else "C"
        mapped = aligner.align_read("sub", "".join(read))
        assert mapped.position == 1200
        assert mapped.score == 100 - 4
        assert mapped.cigar.count("X") == 1

    def test_reverse_strand_read(self, small_reference, aligner):
        read = reverse_complement(small_reference.sequence[3000:3101])
        mapped = aligner.align_read("rev", read)
        assert mapped.position == 3000
        assert mapped.reverse

    def test_read_with_deletion(self, small_reference, aligner):
        window = small_reference.sequence[5000:5106]
        read = window[:50] + window[53:104]  # 3-base deletion
        mapped = aligner.align_read("del", read)
        assert mapped.position == 5000
        assert mapped.cigar.count("D") == 3

    def test_unmappable_read(self, aligner):
        mapped = aligner.align_read("junk", "ACGT" * 25 + "A")
        # A random-ish repeat probably maps nowhere with score >= 30 unless
        # the genome contains it; just require a coherent answer.
        assert mapped.is_unmapped or mapped.score >= 30

    def test_align_reads_batch(self, small_reference, aligner):
        reads = [
            ("a", small_reference.sequence[100:201]),
            ("b", small_reference.sequence[400:501]),
        ]
        mapped = aligner.align_reads(reads)
        assert [m.position for m in mapped] == [100, 400]

    def test_dp_cells_counted_for_inexact_reads(self, small_reference):
        aligner = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        read = list(small_reference.sequence[2000:2101])
        read[10] = "A" if read[10] != "A" else "C"
        aligner.align_read("x", "".join(read))
        assert aligner.stats.dp_cells > 0

    def test_simulated_reads_map_near_truth(self, small_reference, simulated_reads):
        aligner = BwaMemAligner(small_reference, BwaMemConfig(band=12))
        near = 0
        for sim in simulated_reads:
            mapped = aligner.align_read(sim.name, sim.sequence)
            if not mapped.is_unmapped and abs(mapped.position - sim.true_position) <= 12:
                near += 1
        assert near >= int(0.8 * len(simulated_reads))
