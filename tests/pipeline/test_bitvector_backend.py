"""Tests for the bitvector backend and the driver's batch dispatch path.

Three contracts:

* the batched NumPy kernel and the scalar reference kernel produce
  bit-identical mappings *and* bit-identical ``AlignmentStats`` (the
  dedupe/lane bookkeeping lives in the engine-level
  ``BitvectorKernelStats``, never in the shared counter surface);
* for every registered backend, the driver's batch dispatch order and
  the per-candidate fallback order produce bit-identical
  ``MappedRead``s — batching is a scheduling choice, not a semantic one;
* the window/lane dedupe counters prove their rates on a crafted
  duplicate-heavy batch.
"""

import dataclasses

import pytest

from repro.align.records import AlignmentStats
from repro.pipeline.bitvector import (
    BatchedBitvectorEngine,
    BitvectorAligner,
    BitvectorConfig,
    ScalarBitvectorEngine,
)
from repro.pipeline.common import Candidate
from repro.pipeline.registry import backend_names, get_backend
from repro.pipeline.stages import PipelineDriver
from repro.telemetry import telemetry_session

from tests.pipeline.golden_fixtures import (
    EDIT_BOUND,
    SEGMENT_COUNT,
    mapping_rows,
)
from tests.pipeline.test_backend_goldens import CONFIGS


def stats_dict(stats: AlignmentStats):
    return dataclasses.asdict(stats)


@pytest.fixture(scope="module")
def batch(simulated_reads):
    return [(s.name, s.sequence) for s in simulated_reads]


class TestKernelIdentity:
    """Scalar reference kernel vs batched NumPy lanes: bit-identical."""

    def test_batched_equals_scalar(self, small_reference, batch):
        scalar = BitvectorAligner(
            small_reference,
            BitvectorConfig(edit_bound=EDIT_BOUND, kernel="scalar"),
        )
        batched = BitvectorAligner(
            small_reference,
            BitvectorConfig(edit_bound=EDIT_BOUND, kernel="batched"),
        )
        scalar_mapped = scalar.align_batch(batch)
        batched_mapped = batched.align_batch(batch)
        assert mapping_rows(batched_mapped) == mapping_rows(scalar_mapped)
        assert stats_dict(batched.stats) == stats_dict(scalar.stats)

    def test_unknown_kernel_rejected(self, small_reference):
        with pytest.raises(ValueError, match="unknown bitvector kernel"):
            BitvectorAligner(
                small_reference, BitvectorConfig(kernel="simd")
            )

    def test_kernel_stats_surface(self, small_reference, batch):
        aligner = BitvectorAligner(
            small_reference, BitvectorConfig(edit_bound=EDIT_BOUND)
        )
        aligner.align_batch(batch)
        kstats = aligner.kernel_stats
        assert kstats.batches >= 1
        assert kstats.lanes == aligner.stats.extensions
        assert kstats.kernel_lanes <= kstats.lanes
        assert kstats.windows_fetched <= kstats.windows_requested
        assert 0.0 <= kstats.window_dedupe_rate <= 1.0

    def test_kernel_stats_never_leak_into_alignment_stats(self):
        field_names = {f.name for f in dataclasses.fields(AlignmentStats)}
        assert not field_names & {"batches", "lanes", "windows_requested"}


@pytest.mark.parametrize("backend", backend_names())
class TestBatchDispatchIdentity:
    """Batch dispatch vs per-candidate fallback, every registered backend."""

    def _drivers(self, backend, reference):
        config = CONFIGS[backend]()
        batched = get_backend(backend).build(reference, config, None)._driver
        fallback_stages = (
            get_backend(backend).build(reference, config, None)._driver.stages
        )
        fallback = PipelineDriver(fallback_stages, batch_dispatch=False)
        return batched, fallback

    def test_align_batch_identical(self, backend, small_reference, batch):
        batched, fallback = self._drivers(backend, small_reference)
        assert mapping_rows(batched.align_batch(batch)) == mapping_rows(
            fallback.align_batch(batch)
        )
        assert stats_dict(batched.stats) == stats_dict(fallback.stats)

    def test_align_read_identical(self, backend, small_reference, batch):
        batched, fallback = self._drivers(backend, small_reference)
        for name, sequence in batch[:8]:
            assert batched.align_read(name, sequence) == fallback.align_read(
                name, sequence
            )
        assert stats_dict(batched.stats) == stats_dict(fallback.stats)


class TestWindowDedupe:
    """The dedupe counters on a crafted duplicate-heavy extend_batch."""

    def test_duplicate_jobs_share_windows_and_lanes(self, small_reference):
        engine = BatchedBitvectorEngine(
            small_reference, EDIT_BOUND, BitvectorConfig().scheme
        )
        oriented = small_reference.fetch(500, 601)
        candidate = Candidate(window_start=500, reverse=False, seed_length=40)
        stats = AlignmentStats()
        results = engine.extend_batch([(oriented, candidate)] * 4, stats)
        assert len(results) == 4
        assert all(r is not None for r in results)
        kstats = engine.kernel_stats
        assert kstats.windows_requested == 4
        assert kstats.windows_fetched == 1
        assert kstats.window_dedupe_rate == pytest.approx(0.75)
        assert kstats.lanes == 4
        assert kstats.kernel_lanes == 1  # one unique (pattern, window) lane
        # Shared traceback still charges every job's counters identically.
        assert stats.extensions == 4
        assert stats.candidates_survived == 4

    def test_scalar_engine_counts_every_fetch(self, small_reference):
        engine = ScalarBitvectorEngine(
            small_reference, EDIT_BOUND, BitvectorConfig().scheme
        )
        oriented = small_reference.fetch(500, 601)
        candidate = Candidate(window_start=500, reverse=False, seed_length=40)
        stats = AlignmentStats()
        for _ in range(3):
            assert engine.extend(oriented, candidate, stats) is not None
        kstats = engine.kernel_stats
        assert kstats.windows_requested == 3
        assert kstats.windows_fetched == 3
        assert kstats.window_dedupe_rate == 0.0


class TestBatchTelemetry:
    def test_batch_histogram_and_stage_span(self, small_reference, batch):
        with telemetry_session() as telemetry:
            aligner = BitvectorAligner(
                small_reference, BitvectorConfig(edit_bound=EDIT_BOUND)
            )
            aligner.align_batch(batch)
        lanes = telemetry.metrics.get("pipeline_batch_lanes")
        assert lanes.count >= 1
        assert lanes.total == aligner.kernel_stats.lanes
        stage_names = {name for __, name, __ts, __pid in telemetry.tracer.events}
        assert "extend_batch" in stage_names
