"""Tests for repro.pipeline.genax."""

import pytest

from repro.genome.sequence import reverse_complement
from repro.pipeline.genax import GenAxAligner, GenAxConfig


@pytest.fixture(scope="module")
def aligner(small_reference):
    return GenAxAligner(
        small_reference, GenAxConfig(edit_bound=12, segment_count=4)
    )


class TestGenAx:
    def test_exact_read(self, small_reference, aligner):
        read = small_reference.sequence[900:1001]
        mapped = aligner.align_read("exact", read)
        assert mapped.position == 900
        assert mapped.score == 101
        assert str(mapped.cigar) == "101="

    def test_exact_fast_path_skips_extension(self, small_reference):
        aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=8, segment_count=4))
        before = aligner.lane_stats.extensions
        aligner.align_read("exact", small_reference.sequence[60:161])
        assert aligner.stats.reads_exact == 1
        # Forward strand resolved exactly; only the reverse strand may extend.
        assert aligner.lane_stats.extensions - before <= 8

    def test_substitution_read(self, small_reference, aligner):
        read = list(small_reference.sequence[2500:2601])
        read[40] = "A" if read[40] != "A" else "C"
        mapped = aligner.align_read("sub", "".join(read))
        assert mapped.position == 2500
        assert mapped.score == 100 - 4
        assert mapped.cigar.count("X") == 1

    def test_reverse_read(self, small_reference, aligner):
        read = reverse_complement(small_reference.sequence[4000:4101])
        mapped = aligner.align_read("rev", read)
        assert mapped.position == 4000
        assert mapped.reverse

    def test_insertion_read(self, small_reference, aligner):
        window = small_reference.sequence[6000:6101]
        read = window[:60] + "T" + window[60:100]
        mapped = aligner.align_read("ins", read)
        assert mapped.position == 6000
        assert mapped.cigar.count("I") >= 1

    def test_lane_cycles_accounted(self, small_reference):
        aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=8, segment_count=4))
        read = list(small_reference.sequence[3000:3101])
        read[20] = "A" if read[20] != "A" else "C"
        aligner.align_read("x", "".join(read))
        stats = aligner.lane_stats
        assert stats.extensions > 0
        assert stats.cycles > stats.extensions * 100  # > N cycles per hit

    def test_work_distributed_across_lanes(self, small_reference):
        aligner = GenAxAligner(
            small_reference, GenAxConfig(edit_bound=8, segment_count=4, sillax_lanes=4)
        )
        for start in (1000, 2000, 3000, 4000):
            read = list(small_reference.sequence[start : start + 101])
            read[13] = "A" if read[13] != "A" else "C"
            aligner.align_read(f"r{start}", "".join(read))
        lanes = aligner._engine._lanes  # lane pool lives on the extension engine
        busy_lanes = sum(1 for lane in lanes if lane.stats.extensions)
        assert busy_lanes >= 2

    def test_seeding_stats_populated(self, aligner, small_reference):
        aligner.align_read("s", small_reference.sequence[7000:7101])
        assert aligner.seeding_stats.finder.index_lookups > 0

    def test_simulated_reads_accuracy(self, small_reference, simulated_reads):
        aligner = GenAxAligner(small_reference, GenAxConfig(edit_bound=12, segment_count=4))
        near = 0
        for sim in simulated_reads:
            mapped = aligner.align_read(sim.name, sim.sequence)
            if not mapped.is_unmapped and abs(mapped.position - sim.true_position) <= 12:
                near += 1
        assert near >= int(0.8 * len(simulated_reads))
