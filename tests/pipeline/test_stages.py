"""Unit tests for the staged-pipeline driver (repro.pipeline.stages).

Exercised with *fake* stages so the driver's own responsibilities are
pinned down in isolation: strand enumeration, the exact-match fast path
and its once-per-read ``reads_exact`` accounting, filter chaining, and
the equivalence of the per-read and segment-major execution orders.
"""

from typing import Dict, List, Sequence

from repro.align.records import AlignmentStats
from repro.genome.sequence import reverse_complement
from repro.pipeline.common import Candidate, Extension
from repro.filters import FilterCascade
from repro.pipeline.stages import PipelineDriver, StageSet
from repro.seeding.accelerator import GlobalSeed

READ = "ACGTACGTTACG"


def exact_seed(length: int, position: int) -> GlobalSeed:
    return GlobalSeed(
        read_offset=0,
        length=length,
        positions=(position,),
        exact_whole_read=True,
    )


def partial_seed(offset: int, length: int, positions) -> GlobalSeed:
    return GlobalSeed(read_offset=offset, length=length, positions=tuple(positions))


class FakeSeeder:
    """Seed provider backed by a literal oriented-sequence -> seeds table."""

    def __init__(self, table: Dict[str, List[GlobalSeed]]) -> None:
        self.table = table
        self.seed_calls = 0
        self.batch_calls = 0

    def seed(self, oriented: str) -> List[GlobalSeed]:
        self.seed_calls += 1
        return self.table.get(oriented, [])

    def seed_batch(self, oriented: Sequence[str]) -> List[List[GlobalSeed]]:
        self.batch_calls += 1
        return [self.table.get(sequence, []) for sequence in oriented]


class CountingExtender:
    """Extension engine that accepts every candidate at a fixed score."""

    def __init__(self, score: int = 50) -> None:
        self.calls = 0
        self.score = score

    def extend(self, oriented, candidate, stats: AlignmentStats):
        self.calls += 1
        stats.extensions += 1
        return Extension(
            candidate=candidate,
            score=self.score,
            position=max(0, candidate.window_start),
            cigar=None,
            query_end=len(oriented),
        )


class FlagFilter:
    """Candidate filter with a fixed verdict and a call counter."""

    name = "flag"

    def __init__(self, verdict: bool) -> None:
        self.verdict = verdict
        self.calls = 0

    def admit(self, oriented, candidate, stats: AlignmentStats) -> bool:
        self.calls += 1
        return self.verdict


def make_driver(seeder, extender, filters=(), min_score=5, max_candidates=64):
    return PipelineDriver(
        StageSet(
            seeder=seeder,
            extender=extender,
            match_score=1,
            min_score=min_score,
            max_candidates=max_candidates,
            cascade=FilterCascade(tuple(filters)) if filters else None,
        )
    )


class TestExactFastPath:
    def test_exact_on_both_strands_counts_reads_exact_once(self):
        """The satellite bug: an exact hit per strand must not double-count."""
        table = {
            READ: [exact_seed(len(READ), 100)],
            reverse_complement(READ): [exact_seed(len(READ), 200)],
        }
        extender = CountingExtender()
        driver = make_driver(FakeSeeder(table), extender)
        mapped = driver.align_read("palindrome-ish", READ)
        assert driver.stats.reads_exact == 1
        assert driver.stats.reads_mapped == 1
        # Fast path: no extension engine work for either strand.
        assert extender.calls == 0
        # Equal scores; forward strand wins the tie-break.
        assert mapped.position == 100
        assert not mapped.reverse

    def test_exact_single_strand(self):
        table = {READ: [exact_seed(len(READ), 42)]}
        driver = make_driver(FakeSeeder(table), CountingExtender())
        mapped = driver.align_read("fwd", READ)
        assert driver.stats.reads_exact == 1
        assert mapped.position == 42
        assert str(mapped.cigar) == f"{len(READ)}="


class TestFilterChain:
    def test_veto_skips_extension(self):
        table = {READ: [partial_seed(0, 8, (300,))]}
        extender = CountingExtender()
        veto = FlagFilter(False)
        driver = make_driver(FakeSeeder(table), extender, filters=(veto,))
        mapped = driver.align_read("vetoed", READ)
        assert veto.calls == 1
        assert extender.calls == 0
        assert mapped.is_unmapped
        assert driver.stats.reads_unmapped == 1

    def test_chain_short_circuits_after_first_veto(self):
        table = {READ: [partial_seed(0, 8, (300,))]}
        first, second = FlagFilter(False), FlagFilter(True)
        driver = make_driver(
            FakeSeeder(table), CountingExtender(), filters=(first, second)
        )
        driver.align_read("short-circuit", READ)
        assert first.calls == 1
        assert second.calls == 0

    def test_admitted_candidates_reach_extender(self):
        table = {READ: [partial_seed(0, 8, (300, 400))]}
        extender = CountingExtender()
        admit = FlagFilter(True)
        driver = make_driver(FakeSeeder(table), extender, filters=(admit,))
        driver.align_read("admitted", READ)
        assert admit.calls == 2
        assert extender.calls == 2


class TestExecutionOrders:
    def table(self):
        other = "TTTTGGGGCCCC"
        return {
            READ: [partial_seed(2, 6, (502,))],
            reverse_complement(READ): [],
            other: [exact_seed(len(other), 9000)],
            reverse_complement(other): [],
        }, [("a", READ), ("b", "TTTTGGGGCCCC")]

    def test_batch_matches_per_read(self):
        table, reads = self.table()
        per_read = make_driver(FakeSeeder(table), CountingExtender())
        batch = make_driver(FakeSeeder(table), CountingExtender())
        rows = lambda mapped: [
            (m.read_name, m.position, m.reverse, m.score, m.mapping_quality)
            for m in mapped
        ]
        assert rows(per_read.align_reads(reads)) == rows(batch.align_batch(reads))
        assert per_read.stats == batch.stats

    def test_empty_batch_still_calls_seed_batch(self):
        """Segment-major order streams tables even for an empty batch."""
        seeder = FakeSeeder({})
        driver = make_driver(seeder, CountingExtender())
        assert driver.align_batch([]) == []
        assert seeder.batch_calls == 1
        assert seeder.seed_calls == 0


class TestSelection:
    def test_below_min_score_is_unmapped(self):
        table = {READ: [partial_seed(0, 8, (300,))]}
        driver = make_driver(
            FakeSeeder(table), CountingExtender(score=3), min_score=30
        )
        mapped = driver.align_read("weak", READ)
        assert mapped.is_unmapped
        assert driver.stats.reads_unmapped == 1
        assert driver.stats.reads_mapped == 0

    def test_candidate_cap_respected(self):
        positions = tuple(range(100, 100 + 10 * len(READ), len(READ)))
        table = {READ: [partial_seed(0, 8, positions)]}
        extender = CountingExtender()
        driver = make_driver(FakeSeeder(table), extender, max_candidates=3)
        driver.align_read("capped", READ)
        assert extender.calls <= 2 * 3  # per strand
