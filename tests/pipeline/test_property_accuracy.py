"""Property: reads sampled from the genome map back to where they came from.

The fundamental end-to-end contract — randomized over sampling position,
strand and error placement, within the edit budget the pipeline is
configured for.
"""

import random

import pytest

from repro.genome.sequence import reverse_complement
from repro.pipeline.genax import GenAxAligner, GenAxConfig

EDIT_BOUND = 10


@pytest.fixture(scope="module")
def aligner(small_reference):
    return GenAxAligner(
        small_reference, GenAxConfig(edit_bound=EDIT_BOUND, segment_count=3)
    )


def _unique_window(genome: str, rng: random.Random, length: int = 101) -> int:
    """A sampling position whose window occurs exactly once (overlap-aware)."""
    while True:
        start = rng.randrange(0, len(genome) - length)
        window = genome[start : start + length]
        occurrences = sum(
            1
            for i in range(len(genome) - length + 1)
            if genome[i : i + length] == window
        )
        if occurrences == 1:
            return start


@pytest.mark.parametrize("seed", range(8))
def test_mutated_read_maps_home(small_reference, aligner, seed):
    rng = random.Random(1000 + seed)
    genome = small_reference.sequence
    start = _unique_window(genome, rng)
    read = list(genome[start : start + 101])

    # Up to 4 mixed errors (well within the edit bound).
    for __ in range(rng.randrange(0, 5)):
        p = rng.randrange(len(read))
        roll = rng.random()
        if roll < 0.6:
            read[p] = rng.choice([b for b in "ACGT" if b != read[p]])
        elif roll < 0.8 and len(read) < 105:
            read.insert(p, rng.choice("ACGT"))
        elif len(read) > 97:
            del read[p]
    sequence = "".join(read)
    reverse = rng.random() < 0.5
    if reverse:
        sequence = reverse_complement(sequence)

    mapped = aligner.align_read(f"prop_{seed}", sequence)
    assert not mapped.is_unmapped
    assert mapped.reverse == reverse
    assert abs(mapped.position - start) <= EDIT_BOUND
    # The reported trace must re-score to the reported score over the
    # mapped region (the deep invariant, checked end to end here).
    oriented = reverse_complement(sequence) if reverse else sequence
    span = mapped.cigar.reference_length
    region = small_reference.fetch(mapped.position, mapped.position + span)
    from repro.align.scoring import BWA_MEM_SCHEME

    assert mapped.cigar.score(region, oriented, BWA_MEM_SCHEME) == mapped.score
