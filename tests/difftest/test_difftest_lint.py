"""Explicit lint coverage for the difftest subsystem.

The repo-wide self-check already sweeps ``src/``; this test pins the
difftest package specifically so a future lint-root reshuffle cannot
silently drop it.  Pickle-safety (GX301) matters here: the fuzz driver's
predicate hooks must stay shardable via :mod:`repro.parallel`.
"""

import os

from repro.analysis.findings import render_text
from repro.analysis.runner import collect_files, lint_files

DIFFTEST_PKG = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
    "repro",
    "difftest",
)


def test_difftest_package_is_lint_clean():
    files = collect_files([DIFFTEST_PKG])
    assert len(files) >= 6, "difftest package files missing from lint sweep"
    findings = lint_files(files)
    assert findings == [], "\n" + render_text(findings)
