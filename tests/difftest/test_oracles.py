"""Tests for the oracle registry and comparison contracts."""

import pytest

from repro.difftest.grammar import CaseGenerator, DiffCase
from repro.difftest.oracles import (
    MAPPING_BUDGET,
    MAPPING_MAX_READ,
    MAPPING_MIN_SCORE,
    Contract,
    all_pairs,
    compare_outputs,
    evaluate_pair,
    get_pair,
    pair_names,
)

PARAMS = {"k": 2, "band": 2, "smem_k": 3}


class TestRegistry:
    def test_every_contract_class_represented(self):
        contracts = {pair.contract for pair in all_pairs()}
        assert contracts == set(Contract)

    def test_names_unique_and_sorted_api(self):
        names = pair_names()
        assert len(names) == len(set(names))
        assert "genax-vs-bwamem" in names

    def test_get_pair_unknown_raises(self):
        with pytest.raises(ValueError):
            get_pair("no-such-pair")

    def test_registry_is_stable_across_calls(self):
        assert [pair.name for pair in all_pairs()] == [
            pair.name for pair in all_pairs()
        ]

    def test_hooks_are_module_level(self):
        # Pickle-safety for a future sharded driver: no lambdas/closures.
        for pair in all_pairs():
            for hook in (pair.fast, pair.oracle):
                assert "<locals>" not in hook.__qualname__, pair.name
                assert hook.__name__ != "<lambda>", pair.name


class TestContracts:
    def test_exact_score_mismatch_detail(self):
        detail = compare_outputs(Contract.EXACT_SCORE, 3, 4)
        assert detail is not None and "mismatch" in detail

    def test_exact_score_agreement(self):
        assert compare_outputs(Contract.EXACT_SCORE, 3, 3) is None

    def test_hit_set_order_matters(self):
        assert compare_outputs(Contract.HIT_SET, [1, 2], [2, 1]) is not None

    def test_score_cigar_requires_valid_sides(self):
        good = {"score": 5, "cigar": "5=", "valid": True}
        bad = {"score": 5, "cigar": "5=", "valid": False, "error": "overrun"}
        assert compare_outputs(Contract.SCORE_CIGAR, good, good) is None
        detail = compare_outputs(Contract.SCORE_CIGAR, bad, good)
        assert detail is not None and "invalid" in detail

    def test_score_cigar_allows_different_cigars(self):
        left = {"score": 5, "cigar": "1=1D4=", "valid": True}
        right = {"score": 5, "cigar": "4=1D1=", "valid": True}
        assert compare_outputs(Contract.SCORE_CIGAR, left, right) is None

    def test_score_cigar_score_mismatch(self):
        left = {"score": 5, "cigar": "5=", "valid": True}
        right = {"score": 6, "cigar": "6=", "valid": True}
        assert compare_outputs(Contract.SCORE_CIGAR, left, right) is not None


class TestEvaluation:
    def test_agreeing_case_returns_none(self):
        pair = get_pair("myers-vs-dp")
        case = DiffCase("uniform", "ACGT", "ACGT", dict(PARAMS))
        assert evaluate_pair(pair, case) is None

    def test_disagreement_carries_both_outputs(self):
        # A synthetic pair is overkill: feed mismatched outputs directly.
        detail = compare_outputs(Contract.EXACT_SCORE, 1, 2)
        assert detail == "output mismatch: fast=1 oracle=2"

    @pytest.mark.parametrize("name", [
        "myers-vs-dp",
        "silla-vs-dp",
        "ula-vs-dp",
        "systolic-vs-banded",
        "banded-score-vs-traceback",
        "hirschberg-vs-nw",
        "myers-search-vs-dp",
        "smem-vs-brute",
        "exact-match-vs-brute",
    ])
    def test_cheap_pairs_agree_on_short_budget(self, name):
        pair = get_pair(name)
        generator = CaseGenerator(0, pair.name, pair.spec)
        for index in range(12):
            disagreement = evaluate_pair(pair, generator.generate(index))
            assert disagreement is None, disagreement

    def test_empty_inputs_every_pair(self):
        empty = DiffCase("uniform", "", "", dict(PARAMS))
        skip = (
            # Mapping needs a non-empty genome by API contract.
            "genax-vs-bwamem",
            "cascade-vs-nofilter",
            # Chimeric splitting requires the grammar's breakpoint param,
            # which only the sv_chimeric family supplies.
            "sv-chimeric-vs-dp",
        )
        for pair in all_pairs():
            if pair.name in skip:
                continue
            disagreement = evaluate_pair(pair, empty)
            assert disagreement is None, (pair.name, disagreement)


class TestMappingBudget:
    def test_shared_budget_is_the_theorem_bound(self):
        from repro.align.scoring import BWA_MEM_SCHEME

        assert MAPPING_BUDGET == BWA_MEM_SCHEME.max_edits_for_score(
            MAPPING_MAX_READ, MAPPING_MIN_SCORE
        )

    def test_mapping_spec_respects_max_read(self):
        pair = get_pair("genax-vs-bwamem")
        assert pair.spec.query_len[1] == MAPPING_MAX_READ
        assert pair.spec.related_query

    @pytest.mark.slow
    def test_mapping_pair_agrees_on_smoke_budget(self):
        pair = get_pair("genax-vs-bwamem")
        generator = CaseGenerator(0, pair.name, pair.spec)
        for index in range(20):
            disagreement = evaluate_pair(pair, generator.generate(index))
            assert disagreement is None, disagreement
