"""The pytest bridge: every committed corpus case replays as a tier-1 test.

A failure here means a kernel change either broke a fast/oracle contract
on a previously-minimized case, or silently moved an agreed-upon answer
(both outputs are pinned).  Re-record deliberately changed cases with
``repro-difftest shrink <file> --out tests/difftest/corpus``.
"""

import os

import pytest

from repro.difftest.corpus import (
    CorpusEntry,
    default_corpus_dir,
    entry_filename,
    entry_from_json,
    load_corpus,
    make_entry,
    replay_entry,
    write_entry,
)
from repro.difftest.grammar import DiffCase
from repro.difftest.oracles import Contract, get_pair

CORPUS = load_corpus()


def _corpus_id(entry: CorpusEntry) -> str:
    return os.path.basename(entry.path or entry.pair)


class TestCommittedCorpus:
    def test_corpus_is_seeded(self):
        assert len(CORPUS) >= 10

    def test_required_family_coverage(self):
        # Every contract class carries at least one homopolymer case and
        # one band/K-boundary indel case (family "edit_burst" or
        # "tandem_repeat" unit-indel shapes).
        by_contract = {}
        for entry in CORPUS:
            by_contract.setdefault(entry.contract, set()).add(entry.case.family)
        for contract in Contract:
            families = by_contract.get(contract, set())
            assert "homopolymer" in families, contract
            assert families & {"edit_burst", "tandem_repeat"}, contract

    @pytest.mark.parametrize("entry", CORPUS, ids=_corpus_id)
    def test_replay(self, entry):
        result = replay_entry(entry)
        assert result.ok, f"{entry.path}: {result.detail}"


class TestCorpusFormat:
    def test_roundtrip_json(self):
        pair = get_pair("myers-vs-dp")
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 1, "band": 1, "smem_k": 3})
        entry = make_entry(pair, case, seed="0:myers-vs-dp:0", note="roundtrip")
        rebuilt = entry_from_json(entry.to_json())
        assert rebuilt.case == entry.case
        assert rebuilt.expected_fast == entry.expected_fast
        assert rebuilt.contract is entry.contract

    def test_filename_is_content_addressed(self):
        pair = get_pair("myers-vs-dp")
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 1, "band": 1, "smem_k": 3})
        first = make_entry(pair, case, seed="s")
        second = make_entry(pair, case, seed="s")
        assert entry_filename(first) == entry_filename(second)
        other = make_entry(pair, case.replace(query="AC"), seed="s")
        assert entry_filename(other) != entry_filename(first)

    def test_schema_version_enforced(self):
        data = {"schema": 999}
        with pytest.raises(ValueError):
            entry_from_json(data)

    def test_write_is_idempotent(self, tmp_path):
        pair = get_pair("myers-vs-dp")
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 1, "band": 1, "smem_k": 3})
        entry = make_entry(pair, case, seed="s")
        first = write_entry(str(tmp_path), entry)
        second = write_entry(str(tmp_path), entry)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_load_corpus_missing_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_default_corpus_dir_points_into_tests(self):
        assert default_corpus_dir().endswith("tests/difftest/corpus")


class TestReplayDetectsDrift:
    def test_contract_break_detected(self):
        pair = get_pair("myers-vs-dp")
        case = DiffCase("uniform", "ACGT", "ACGT", {"k": 1, "band": 1, "smem_k": 3})
        entry = make_entry(pair, case, seed="s")
        # Forge an entry whose recorded outputs disagree with reality.
        forged = CorpusEntry(
            pair=entry.pair,
            contract=entry.contract,
            case=entry.case,
            seed=entry.seed,
            expected_fast=entry.expected_fast + 1,
            expected_oracle=entry.expected_oracle,
        )
        result = replay_entry(forged)
        assert not result.ok
        assert "drifted" in result.detail
