"""Nightly fuzz budget: every pair over a large generated case budget.

Excluded from tier-1 (``-m fuzz``); CI's nightly job runs these with the
full budget.  Any failure message contains the ``seed:pair:index``
coordinates needed to regenerate the exact case locally.
"""

import pytest

from repro.difftest.runner import run_pair
from repro.difftest.oracles import all_pairs

#: Cases per pair for the nightly budget.  The mapping pairs build two
#: full aligners per case, so they get a reduced share.
NIGHTLY_CASES = 400
MAPPING_CASES = 150
_MAPPING_PAIRS = ("genax-vs-bwamem", "cascade-vs-nofilter")


def _budget(pair_name: str) -> int:
    return MAPPING_CASES if pair_name in _MAPPING_PAIRS else NIGHTLY_CASES


@pytest.mark.fuzz
@pytest.mark.parametrize("pair", all_pairs(), ids=lambda pair: pair.name)
def test_nightly_fuzz(pair):
    report = run_pair(pair, cases=_budget(pair.name), seed=0)
    assert report.ok, report.disagreements
