"""Tests for the greedy counterexample shrinker (synthetic predicates)."""

import pytest

from repro.difftest.grammar import DiffCase
from repro.difftest.shrink import shrink_case


def _case(reference: str, query: str = "", params=None) -> DiffCase:
    return DiffCase(
        family="uniform",
        reference=reference,
        query=query,
        params=dict(params or {"k": 4, "band": 4, "smem_k": 4}),
    )


def _has_gg(case: DiffCase) -> bool:
    return "GG" in case.reference


def _total_length_at_least_three(case: DiffCase) -> bool:
    return len(case.reference) + len(case.query) >= 3


def _k_at_least_two(case: DiffCase) -> bool:
    return case.params.get("k", 0) >= 2


class TestShrinking:
    def test_isolates_the_load_bearing_substring(self):
        case = _case("ACGTACGTGGTACGTACGT", "TTTTTTTT")
        result = shrink_case(case, _has_gg)
        assert result.case.reference == "GG"
        assert result.case.query == ""

    def test_respects_length_predicate(self):
        result = shrink_case(_case("ACGTACGT", "ACGT"), _total_length_at_least_three)
        assert len(result.case.reference) + len(result.case.query) == 3

    def test_params_lowered_to_predicate_floor(self):
        result = shrink_case(_case("ACGT"), _k_at_least_two)
        assert result.case.params["k"] == 2
        # The other params fall to their registered floors.
        assert result.case.params["band"] == 1
        assert result.case.params["smem_k"] == 1

    def test_characters_canonicalized_to_a(self):
        result = shrink_case(_case("TCTCTC"), _total_length_at_least_three)
        assert set(result.case.reference + result.case.query) <= {"A"}

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            shrink_case(_case("ACGT"), _has_gg)

    def test_deterministic(self):
        case = _case("ACGTACGGTACGTAGGAC", "CCCC")
        first = shrink_case(case, _has_gg)
        second = shrink_case(case, _has_gg)
        assert first.case == second.case
        assert first.evaluations == second.evaluations

    def test_predicate_exception_treated_as_no_repro(self):
        def fragile(case: DiffCase) -> bool:
            if not case.reference:
                raise RuntimeError("kernel domain error")
            return "G" in case.reference

        result = shrink_case(_case("TTGTT"), fragile)
        assert result.case.reference == "G"

    def test_budget_exhaustion_returns_partial_case(self):
        case = _case("ACGT" * 16, "ACGT" * 8)
        result = shrink_case(case, _total_length_at_least_three, max_evaluations=5)
        assert result.budget_exhausted
        assert result.evaluations <= 5
        # The partial case still satisfies the predicate.
        assert _total_length_at_least_three(result.case)

    def test_already_minimal_case_untouched(self):
        case = _case("GG", "", {"k": 0, "band": 1, "smem_k": 1})
        result = shrink_case(case, _has_gg)
        assert result.case.reference == "GG"
        assert not result.budget_exhausted
