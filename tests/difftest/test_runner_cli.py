"""Tests for the fuzz runner and the repro-difftest CLI."""

import json

import pytest

from repro.difftest.cli import main
from repro.difftest.grammar import DiffCase, GenSpec
from repro.difftest.oracles import Contract, OraclePair
from repro.difftest.runner import (
    DiffStats,
    resolve_pairs,
    run_pair,
    run_pairs,
)

CHEAP_PAIRS = ["myers-vs-dp", "smem-vs-brute", "hirschberg-vs-nw"]


def _broken_fast(case: DiffCase) -> int:
    # Deliberately wrong on any reference containing "GG".
    return 1 if "GG" in case.reference else 0


def _constant_oracle(case: DiffCase) -> int:
    return 0


BROKEN_PAIR = OraclePair(
    name="broken-for-tests",
    contract=Contract.EXACT_SCORE,
    description="synthetic pair that disagrees whenever the reference has GG",
    fast=_broken_fast,
    oracle=_constant_oracle,
    spec=GenSpec(ref_len=(24, 48), query_len=(0, 8)),
)


class TestRunner:
    def test_clean_pairs_report_ok(self):
        report = run_pairs(cases=6, seed=0, pairs=CHEAP_PAIRS)
        assert report.ok
        assert report.total_disagreements == 0
        assert [p.pair for p in report.pairs] == CHEAP_PAIRS

    def test_determinism_identical_reports(self):
        first = run_pairs(cases=8, seed=3, pairs=CHEAP_PAIRS)
        second = run_pairs(cases=8, seed=3, pairs=CHEAP_PAIRS)
        assert json.dumps(first.to_json(), sort_keys=True) == json.dumps(
            second.to_json(), sort_keys=True
        )

    def test_broken_pair_caught_and_shrunk(self):
        report = run_pair(BROKEN_PAIR, cases=30, seed=0)
        assert not report.ok
        record = report.disagreements[0]
        # The shrunk case is minimal: exactly the load-bearing dinucleotide.
        assert record["shrunk_case"]["reference"] == "GG"
        assert record["shrunk_case"]["query"] == ""
        assert record["seed"].startswith("0:broken-for-tests:")

    def test_broken_pair_writes_corpus(self, tmp_path):
        report = run_pair(
            BROKEN_PAIR, cases=30, seed=0, corpus_dir=str(tmp_path)
        )
        assert report.stats.corpus_writes == len(report.disagreements)
        files = sorted(tmp_path.glob("*.json"))
        assert files
        data = json.loads(files[0].read_text())
        assert data["pair"] == "broken-for-tests"
        assert data["reference"] == "GG"

    def test_no_shrink_mode(self):
        report = run_pair(BROKEN_PAIR, cases=30, seed=0, shrink=False)
        assert not report.ok
        assert report.stats.shrink_evaluations == 0
        assert "shrunk_case" not in report.disagreements[0]

    def test_resolve_pairs_default_is_all(self):
        assert len(resolve_pairs(None)) >= 13

    def test_resolve_pairs_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_pairs(["nope"])

    def test_stats_merge(self):
        left = DiffStats(cases_run=2, disagreements=1, shrink_evaluations=5)
        right = DiffStats(cases_run=3, corpus_writes=2)
        left.merge(right)
        assert left == DiffStats(
            cases_run=5, disagreements=1, shrink_evaluations=5, corpus_writes=2
        )


class TestCli:
    def test_run_exit_zero_and_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "run",
                "--cases",
                "4",
                "--seed",
                "0",
                "--report",
                str(report_path),
            ]
            + [arg for name in CHEAP_PAIRS for arg in ("--pair", name)]
        )
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["cases_per_pair"] == 4
        assert "0 disagreement(s)" in capsys.readouterr().out

    def test_run_reports_are_deterministic(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert (
                main(
                    [
                        "run",
                        "--cases",
                        "4",
                        "--seed",
                        "7",
                        "--pair",
                        "myers-vs-dp",
                        "--report",
                        str(path),
                    ]
                )
                == 0
            )
        assert paths[0].read_text() == paths[1].read_text()

    def test_replay_committed_corpus(self, capsys):
        assert main(["replay"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_replay_empty_dir(self, tmp_path, capsys):
        assert main(["replay", "--corpus-dir", str(tmp_path)]) == 0

    def test_list_pairs(self, capsys):
        assert main(["list-pairs"]) == 0
        out = capsys.readouterr().out
        assert "genax-vs-bwamem" in out
        assert "hit-set" in out

    def test_shrink_healthy_case_is_noop(self, tmp_path, capsys):
        from repro.difftest.corpus import load_corpus

        entry = load_corpus()[0]
        assert entry.path is not None
        assert main(["shrink", entry.path]) == 0
        assert "nothing to shrink" in capsys.readouterr().out
