"""Tests for the difftest input grammar."""

import random

import pytest

from repro.difftest.grammar import (
    CLASSIC_FAMILIES,
    FAMILIES,
    CaseGenerator,
    DiffCase,
    GenSpec,
    _mutate,
)

DNA = set("ACGT")


class TestDiffCase:
    def test_param_lookup(self):
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 3})
        assert case.param("k") == 3

    def test_param_missing_raises(self):
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 3})
        with pytest.raises(KeyError):
            case.param("band")

    def test_replace_copies_params(self):
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 3})
        other = case.replace(params={"k": 1})
        assert case.params == {"k": 3}
        assert other.params == {"k": 1}
        assert other.reference == "ACGT"

    def test_replace_strings(self):
        case = DiffCase("uniform", "ACGT", "ACG", {"k": 3})
        assert case.replace(reference="").reference == ""
        assert case.replace(query="T").query == "T"


class TestDeterminism:
    def test_same_coordinates_same_case(self):
        spec = GenSpec()
        first = CaseGenerator(7, "some-pair", spec)
        second = CaseGenerator(7, "some-pair", spec)
        for index in range(30):
            assert first.generate(index) == second.generate(index)

    def test_cases_independent_of_order(self):
        gen = CaseGenerator(7, "some-pair", GenSpec())
        forward = [gen.generate(index) for index in range(12)]
        backward = [gen.generate(index) for index in reversed(range(12))]
        assert forward == list(reversed(backward))

    def test_different_pairs_different_streams(self):
        spec = GenSpec(ref_len=(20, 40), query_len=(10, 20))
        left = CaseGenerator(7, "pair-a", spec).cases(10)
        right = CaseGenerator(7, "pair-b", spec).cases(10)
        assert left != right

    def test_case_seed_format(self):
        gen = CaseGenerator(3, "p", GenSpec())
        assert gen.case_seed(9) == "3:p:9"


class TestFamilies:
    def test_default_rotation_covers_the_classic_families(self):
        # A default spec rotates exactly the frozen classic six — the
        # scenario families must never perturb pre-existing pairs'
        # seeded streams.
        gen = CaseGenerator(0, "p", GenSpec(ref_len=(10, 20), query_len=(5, 10)))
        families = {
            gen.generate(index).family
            for index in range(len(CLASSIC_FAMILIES))
        }
        assert families == set(CLASSIC_FAMILIES)

    def test_pinned_families_rotate_scenario_generators(self):
        scenario = ("long_read_indel", "paired_end", "sv_chimeric")
        gen = CaseGenerator(
            0,
            "p",
            GenSpec(ref_len=(60, 90), query_len=(20, 40), families=scenario),
        )
        families = {gen.generate(index).family for index in range(6)}
        assert families == set(scenario)

    def test_registry_covers_classic_and_scenario_families(self):
        assert set(FAMILIES) == set(CLASSIC_FAMILIES) | {
            "long_read_indel",
            "paired_end",
            "sv_chimeric",
        }

    def test_sequences_are_dna(self):
        gen = CaseGenerator(1, "p", GenSpec(ref_len=(10, 40), query_len=(5, 30)))
        for index in range(40):
            case = gen.generate(index)
            assert set(case.reference) <= DNA
            assert set(case.query) <= DNA

    def test_lengths_respect_spec(self):
        spec = GenSpec(ref_len=(16, 32), query_len=(4, 12))
        gen = CaseGenerator(2, "p", spec)
        for index in range(40):
            case = gen.generate(index)
            assert 16 <= len(case.reference) <= 32

    def test_related_query_is_window_derived(self):
        spec = GenSpec(ref_len=(60, 80), query_len=(20, 30), related_query=True)
        gen = CaseGenerator(3, "p", spec)
        # Related queries that received zero edits are exact substrings.
        exact = sum(
            1
            for index in range(60)
            if gen.generate(index).query in gen.generate(index).reference
        )
        assert exact > 0

    def test_min_k_respected(self):
        gen = CaseGenerator(4, "p", GenSpec(min_k=2))
        for index in range(30):
            assert gen.generate(index).param("k") >= 2

    def test_params_always_present(self):
        gen = CaseGenerator(5, "p", GenSpec())
        case = gen.generate(0)
        assert set(case.params) == {"k", "band", "smem_k"}


class TestMutate:
    def test_zero_edits_identity(self):
        rng = random.Random(0)
        assert _mutate(rng, "ACGTACGT", 0) == "ACGTACGT"

    def test_empty_sequence_grows(self):
        rng = random.Random(0)
        assert len(_mutate(rng, "", 3)) >= 1

    def test_never_raises_with_clustering_window(self):
        # Deletions can shrink the sequence below the cluster window; the
        # position clamp must keep every edit in range.
        for seed in range(200):
            rng = random.Random(seed)
            result = _mutate(rng, "ACGTAC", 6, window=2)
            assert set(result) <= DNA
