"""Fixture tests for the GX5xx dtype-flow family.

Every fixture is a source *string* run through ``lint_source`` (single-
module project graph), so seeded violations live in test data, never in
files on disk — the repo self-check stays clean while these tests prove
the rules actually detect what they claim to.
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.config import SanctionedSite


def findings_for(source, rule, path="src/fake/kern.py"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), path=path)
        if f.rule == rule
    ]


class TestUint64Wrap:
    def test_addition_of_uint64_arrays_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def bump(values):
                words = np.asarray(values, dtype=np.uint64)
                return words + words
            """,
            "uint64-wrap",
        )
        assert len(found) == 1
        assert found[0].code == "GX501"
        assert "wraps modulo 2**64" in found[0].message
        assert "fake.kern.bump" in found[0].message

    def test_uint64_scalar_cast_tracked_through_names(self):
        found = findings_for(
            """
            import numpy as np

            def shrink(raw):
                word = np.uint64(raw)
                delta = np.uint64(3)
                return word - delta
            """,
            "uint64-wrap",
        )
        assert len(found) == 1
        assert "'-'" in found[0].message

    def test_annotation_seeds_uint64(self):
        found = findings_for(
            """
            import numpy as np
            from numpy.typing import NDArray

            def square(words: NDArray[np.uint64]):
                return words * words
            """,
            "uint64-wrap",
        )
        assert len(found) == 1

    def test_module_constant_seeds_uint64(self):
        found = findings_for(
            """
            import numpy as np

            MASK = np.uint64(0xFF)

            def apply(other):
                value = np.uint64(other)
                return MASK * value
            """,
            "uint64-wrap",
        )
        assert len(found) == 1

    def test_unary_negation_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def negate(raw):
                word = np.uint64(raw)
                return -word
            """,
            "uint64-wrap",
        )
        assert len(found) == 1
        assert "unary negation" in found[0].message

    def test_bitwise_operations_clean(self):
        found = findings_for(
            """
            import numpy as np

            def masks(words: "NDArray[np.uint64]", shift):
                w = np.asarray(words, dtype=np.uint64)
                s = np.uint64(shift)
                return ((w << s) | (w >> s)) & w ^ w
            """,
            "uint64-wrap",
        )
        assert found == []

    def test_int64_arithmetic_clean(self):
        found = findings_for(
            """
            import numpy as np

            def total(values):
                scores = np.asarray(values, dtype=np.int64)
                return scores + scores
            """,
            "uint64-wrap",
        )
        assert found == []

    def test_sanctioned_site_suppressed(self, monkeypatch):
        import repro.analysis.config as config

        monkeypatch.setattr(
            config,
            "DTYPE_ALLOWLIST",
            (
                SanctionedSite(
                    site="fake.kern.bump",
                    rule="uint64-wrap",
                    reason="test fixture sanction",
                ),
            ),
        )
        found = findings_for(
            """
            import numpy as np

            def bump(values):
                words = np.asarray(values, dtype=np.uint64)
                return words + words
            """,
            "uint64-wrap",
        )
        assert found == []


class TestUint64Upcast:
    def test_python_int_literal_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def bump(values):
                words = np.asarray(values, dtype=np.uint64)
                return words + 1
            """,
            "uint64-upcast",
        )
        assert len(found) == 1
        assert found[0].code == "GX502"
        assert "value-based casting" in found[0].message

    def test_python_float_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def scale(values):
                words = np.asarray(values, dtype=np.uint64)
                return words * 0.5
            """,
            "uint64-upcast",
        )
        assert len(found) == 1
        assert "float" in found[0].message

    def test_np_uint64_constant_clean(self):
        found = findings_for(
            """
            import numpy as np

            def bump(values):
                words = np.asarray(values, dtype=np.uint64)
                return words + np.uint64(1)
            """,
            "uint64-upcast",
        )
        assert found == []

    def test_shift_by_python_int_flagged(self):
        # Shifts are not wrap arithmetic (GX501 ignores them) but still
        # mix dtypes under value-based casting.
        found = findings_for(
            """
            import numpy as np

            def shift(values):
                words = np.asarray(values, dtype=np.uint64)
                return words << 2
            """,
            "uint64-upcast",
        )
        assert len(found) == 1


class TestHiddenCopy:
    def test_astype_on_hot_path_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def _convert(scores):
                return scores.astype(np.int64)

            class Engine:
                def extend_batch(self, scores):
                    return _convert(scores)
            """,
            "hidden-copy",
        )
        assert len(found) == 1
        assert found[0].code == "GX503"
        assert "fake.kern._convert" in found[0].message
        assert "fake.kern.Engine.extend_batch" in found[0].message

    def test_fancy_indexing_on_hot_path_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def _gather(table, rows):
                lanes = np.asarray(rows, dtype=np.intp)
                planes = np.asarray(table, dtype=np.uint64)
                return planes[lanes]

            class Engine:
                def extend(self, table, rows):
                    return _gather(table, rows)
            """,
            "hidden-copy",
        )
        assert len(found) == 1
        assert "fancy indexing" in found[0].message

    def test_off_hot_path_clean(self):
        found = findings_for(
            """
            import numpy as np

            def report(scores):
                return scores.astype(np.int64)
            """,
            "hidden-copy",
        )
        assert found == []

    def test_basic_slicing_clean(self):
        found = findings_for(
            """
            import numpy as np

            def _slice(table):
                planes = np.asarray(table, dtype=np.uint64)
                return planes[:, 0]

            class Engine:
                def extend_batch(self, table):
                    return _slice(table)
            """,
            "hidden-copy",
        )
        assert found == []

    def test_sanctioned_helper_suppressed(self, monkeypatch):
        import repro.analysis.config as config

        monkeypatch.setattr(
            config,
            "DTYPE_ALLOWLIST",
            (
                SanctionedSite(
                    site="fake.kern._convert",
                    rule="hidden-copy",
                    reason="test fixture sanction",
                ),
            ),
        )
        found = findings_for(
            """
            import numpy as np

            def _convert(scores):
                return scores.astype(np.int64)

            class Engine:
                def extend_batch(self, scores):
                    return _convert(scores)
            """,
            "hidden-copy",
        )
        assert found == []
