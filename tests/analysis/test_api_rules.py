"""Unit tests for the API-hygiene rules (GX401/GX402/GX403)."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.registry import all_rules


def findings_for(source, rule, path="<string>"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), path=path)
        if f.rule == rule
    ]


class TestMutableDefault:
    def test_list_literal_default_caught(self):
        found = findings_for(
            """
            def accumulate(item, into=[]):
                into.append(item)
                return into
            """,
            "mutable-default",
        )
        assert len(found) == 1
        assert found[0].code == "GX401"
        assert "accumulate" in found[0].message
        assert "default_factory" in found[0].hint

    def test_dict_call_and_kwonly_defaults_caught(self):
        source = """
            def configure(*, options=dict(), extras={}):
                return options, extras
            """
        found = findings_for(source, "mutable-default")
        assert len(found) == 2

    def test_none_default_clean(self):
        found = findings_for(
            """
            def accumulate(item, into=None):
                if into is None:
                    into = []
                into.append(item)
                return into
            """,
            "mutable-default",
        )
        assert found == []

    def test_tuple_and_frozenset_defaults_clean(self):
        found = findings_for(
            """
            def configure(order=(1, 2), flags=frozenset()):
                return order, flags
            """,
            "mutable-default",
        )
        assert found == []


class TestBareExcept:
    def test_bare_except_caught(self):
        found = findings_for(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            "bare-except",
        )
        assert len(found) == 1
        assert found[0].code == "GX402"

    def test_typed_except_clean(self):
        found = findings_for(
            """
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
            """,
            "bare-except",
        )
        assert found == []


class TestFloatEquality:
    def test_float_literal_equality_caught(self):
        source = """
            def is_perfect(score):
                return score == 1.0
            """
        found = findings_for(source, "float-equality", path="src/repro/x.py")
        assert len(found) == 1
        assert found[0].code == "GX403"
        assert "isclose" in found[0].hint

    def test_negative_float_and_noteq_caught(self):
        source = """
            def check(x, y):
                return x != -0.5 or 2.5 == y
            """
        found = findings_for(source, "float-equality", path="src/repro/x.py")
        assert len(found) == 2

    def test_int_equality_clean(self):
        source = """
            def check(score):
                return score == 1
            """
        assert findings_for(source, "float-equality", path="src/repro/x.py") == []

    def test_inequality_comparisons_clean(self):
        source = """
            def check(score):
                return score >= 1.0 or score < 0.25
            """
        assert findings_for(source, "float-equality", path="src/repro/x.py") == []

    def test_tests_tree_is_exempt(self):
        source = """
            def test_fraction():
                assert 0.5 == 0.5
            """
        assert (
            findings_for(source, "float-equality", path="tests/test_x.py") == []
        )


class TestRegistry:
    def test_all_shipped_rules_registered_with_unique_codes(self):
        specs = all_rules()
        names = {spec.name for spec in specs}
        assert {
            "unseeded-random",
            "wall-clock",
            "set-iteration",
            "counter-merge",
            "counter-snapshot",
            "pickle-callable",
            "mutable-default",
            "bare-except",
            "float-equality",
        } <= names
        codes = [spec.code for spec in specs]
        assert len(codes) == len(set(codes))
        assert all(spec.description for spec in specs)

    def test_rule_restriction_and_unknown_rule(self):
        restricted = all_rules(frozenset({"wall-clock"}))
        assert [spec.name for spec in restricted] == ["wall-clock"]
        try:
            all_rules(frozenset({"no-such-rule"}))
        except KeyError as error:
            assert "no-such-rule" in str(error)
        else:
            raise AssertionError("unknown rule name must raise KeyError")
