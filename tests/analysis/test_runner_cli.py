"""Runner and CLI behaviour: file collection, formats, exit codes, --changed."""

import json
import os
import subprocess
import textwrap

import pytest

from repro.analysis.cli import main
from repro.analysis.runner import collect_files, lint_paths

BAD_SOURCE = textwrap.dedent(
    """
    import time


    def measure():
        return time.time()
    """
).lstrip()

# Clean under every rule, including GX104 clock confinement: the clock
# arrives injected, exactly the pattern the hint prescribes.
CLEAN_SOURCE = textwrap.dedent(
    """
    def measure(clock):
        return clock()
    """
).lstrip()


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(BAD_SOURCE)
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN_SOURCE)
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import time\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    return tmp_path


class TestRunner:
    def test_collect_files_filters_and_sorts(self, tree):
        files = collect_files([str(tree)])
        names = [os.path.basename(path) for path in files]
        assert names == ["bad.py", "clean.py"]  # no __pycache__, no .txt

    def test_collect_files_missing_path_raises(self, tree):
        with pytest.raises(FileNotFoundError):
            collect_files([str(tree / "absent")])

    def test_lint_paths_reports_with_real_paths(self, tree):
        findings = lint_paths([str(tree)])
        assert [f.rule for f in findings] == ["wall-clock"]
        assert findings[0].path.endswith("bad.py")


class TestCli:
    def test_exit_one_and_text_output_on_findings(self, tree, capsys):
        code = main([str(tree / "pkg" / "bad.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "GX102" in out and "wall-clock" in out
        assert "hint:" in out

    def test_exit_zero_on_clean_file(self, tree, capsys):
        code = main([str(tree / "pkg" / "clean.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_json_format_schema(self, tree, capsys):
        code = main(["--format", "json", str(tree / "pkg" / "bad.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "repro-genaxlint"
        assert payload["finding_count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "wall-clock"
        assert finding["code"] == "GX102"
        assert finding["line"] == 5
        assert finding["severity"] == "error"
        assert finding["hint"]

    def test_rules_restriction(self, tree, capsys):
        code = main(["--rules", "unseeded-random", str(tree / "pkg" / "bad.py")])
        capsys.readouterr()
        assert code == 0  # wall-clock rule not selected

    def test_unknown_rule_is_usage_error(self, tree, capsys):
        code = main(["--rules", "no-such-rule", str(tree / "pkg" / "bad.py")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no-such-rule" in err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GX101" in out and "unseeded-random" in out
        assert "table_bytes_streamed" in out  # allowlist is printed


class TestChanged:
    """--changed lints only files differing from the base ref."""

    @pytest.fixture()
    def git_repo(self, tmp_path, monkeypatch):
        def git(*args):
            subprocess.run(
                ("git", *args),
                cwd=tmp_path,
                check=True,
                capture_output=True,
                env={
                    **os.environ,
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                },
            )

        git("init", "-q", "-b", "main")
        (tmp_path / "tracked.py").write_text(CLEAN_SOURCE)
        git("add", "tracked.py")
        git("commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_changed_picks_up_modified_and_untracked(self, git_repo, capsys):
        (git_repo / "tracked.py").write_text(BAD_SOURCE)
        (git_repo / "fresh.py").write_text(BAD_SOURCE)
        code = main(["--changed", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["finding_count"] == 2
        flagged = {os.path.basename(f["path"]) for f in payload["findings"]}
        assert flagged == {"tracked.py", "fresh.py"}

    def test_changed_clean_when_no_diff(self, git_repo, capsys):
        code = main(["--changed"])
        capsys.readouterr()
        assert code == 0

    def test_changed_rejects_explicit_paths(self, git_repo, capsys):
        with pytest.raises(SystemExit):
            main(["--changed", "somepath"])
        capsys.readouterr()
