"""The shipped codebase must satisfy its own lint gate.

This is the test the whole tentpole exists for: every invariant genaxlint
encodes (seeded RNGs, monotonic clocks, complete counter merges, pickle
safety, API hygiene) holds over ``src/``, ``benchmarks/``, ``tests/`` and
``examples/`` with **zero inline suppressions** — the only sanctioned
exceptions live in the documented counter allowlist.
"""

import os

from repro.analysis.findings import render_text
from repro.analysis.runner import collect_files, lint_files
from repro.analysis.suppress import parse_suppressions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINT_ROOTS = [
    os.path.join(REPO_ROOT, name)
    for name in ("src", "benchmarks", "tests", "examples")
]


def repo_files():
    files = collect_files(LINT_ROOTS)
    assert len(files) > 100, "lint roots look wrong — far too few files found"
    return files


class TestSelfCheck:
    def test_repository_is_lint_clean(self):
        findings = lint_files(repo_files())
        assert findings == [], "\n" + render_text(findings)

    def test_no_inline_suppressions_anywhere(self):
        """Zero ``# genaxlint: disable`` comments ship in the repo.

        The suppression mechanism exists for downstream forks and
        emergencies; this codebase's only sanctioned exceptions are the
        counter-allowlist entries in ``repro.analysis.config``, which are
        reviewed and documented in one place.
        """
        offenders = []
        for path in repo_files():
            with open(path, "r", encoding="utf-8") as handle:
                suppressions = parse_suppressions(handle.read())
            if suppressions:
                offenders.append((path, sorted(suppressions)))
        assert offenders == []
