"""Unit tests for the forward dataflow engine (domain-agnostic half).

The tests drive the engine with a tiny parity domain — enough lattice to
observe joins, loop fixpoints, and widening — plus an event-emitting
domain to check deduplication.  The real dtype lattice is exercised in
``test_dtype_rules.py``.
"""

import ast
import textwrap

from repro.analysis.dataflow import (
    MAX_LOOP_PASSES,
    AbstractDomain,
    analyze_function,
)


class ParityDomain(AbstractDomain):
    """Tracks whether names hold the literal 0 ("even") or 1 ("odd")."""

    def unknown(self):
        return "?"

    def join(self, left, right):
        return left if left == right else "?"

    def evaluate(self, env, node, emit):
        if isinstance(node, ast.Constant) and node.value in (0, 1):
            return "even" if node.value == 0 else "odd"
        if isinstance(node, ast.Name):
            value = env.get(node.id, "?")
            if value == "odd":
                emit(node, "odd-read", f"read odd name {node.id}", "no hint")
            return value
        if isinstance(node, ast.BinOp):
            left = self.evaluate(env, node.left, emit)
            right = self.evaluate(env, node.right, emit)
            if "?" in (left, right):
                return "?"
            return "even" if left == right else "odd"
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.evaluate(env, child, emit)
        return "?"


def events_for(source, domain=None):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return analyze_function(func, domain or ParityDomain())


def tags(events):
    return [event.tag for event in events]


class TestStraightLine:
    def test_assignment_propagates(self):
        events = events_for(
            """
            def f():
                x = 1
                return x
            """
        )
        assert tags(events) == ["odd-read"]

    def test_augassign_behaves_like_binop(self):
        # x starts odd, x += x makes it even: no event on the later read.
        source = textwrap.dedent(
            """
            def f():
                x = 1
                x += x
                return x
            """
        )
        func = ast.parse(source).body[0]
        events = analyze_function(func, ParityDomain())
        return_line = func.body[-1].lineno
        assert [e for e in events if e.node.lineno == return_line] == []
        assert set(tags(events)) == {"odd-read"}

    def test_tuple_unpacking_falls_to_unknown(self):
        events = events_for(
            """
            def f(pair):
                x, y = pair
                return x
            """
        )
        assert events == []


class TestBranches:
    def test_agreeing_branches_keep_value(self):
        events = events_for(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 1
                return x
            """
        )
        assert tags(events) == ["odd-read"]

    def test_divergent_branches_join_to_unknown(self):
        events = events_for(
            """
            def f(flag):
                if flag:
                    x = 0
                else:
                    x = 1
                return x
            """
        )
        assert events == []

    def test_name_bound_in_one_branch_is_unknown_after(self):
        events = events_for(
            """
            def f(flag):
                if flag:
                    x = 1
                return x
            """
        )
        assert events == []

    def test_try_handler_starts_from_pre_body_env(self):
        # The handler may run after any prefix of the body, so the odd
        # binding from the body must not be assumed inside the handler.
        events = events_for(
            """
            def f():
                x = 0
                try:
                    x = 1
                except ValueError:
                    pass
                return x
            """
        )
        assert events == []


class TestLoops:
    def test_loop_invariant_value_survives(self):
        events = events_for(
            """
            def f(items):
                x = 1
                for item in items:
                    pass
                return x
            """
        )
        assert tags(events) == ["odd-read"]

    def test_loop_varying_value_widens(self):
        events = events_for(
            """
            def f(items):
                x = 1
                for item in items:
                    x = x + 1
                return x
            """
        )
        # x oscillates odd/even across passes: joined to unknown, so the
        # loop body's first-pass read is the only event.
        assert "odd-read" in tags(events)

    def test_fixpoint_terminates_on_pathological_loop(self):
        lines = ["def f(items):", "    x = 1", "    for item in items:"]
        lines.extend(
            f"        x{i} = x" for i in range(MAX_LOOP_PASSES + 4)
        )
        lines.append("    return x")
        events = events_for("\n".join(lines))
        assert isinstance(events, list)


class TestEventDiscipline:
    def test_loop_body_events_deduplicated(self):
        events = events_for(
            """
            def f(items):
                x = 1
                for item in items:
                    y = x
                return y
            """
        )
        # The loop body is analysed multiple times on the way to the
        # fixpoint; the read of x must be reported exactly once.
        lines = [event.location for event in events if event.tag == "odd-read"]
        assert len(lines) == len(set(lines))

    def test_non_function_node_rejected(self):
        try:
            analyze_function(ast.parse("x = 1").body[0], ParityDomain())
        except TypeError as error:
            assert "function node" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected TypeError")
