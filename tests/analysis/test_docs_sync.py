"""Docs stay in sync with the code they describe.

The README rule-family table is rendered from the live registries by
``render_rule_table()``; registering a rule without regenerating the
table (``python -c "from repro.analysis import render_rule_table;
print(render_rule_table())"``) fails here rather than drifting silently.
"""

import os

from repro.analysis import render_rule_table
from repro.analysis.registry import all_project_rules, all_rules

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def read_doc(name):
    with open(os.path.join(REPO_ROOT, name), "r", encoding="utf-8") as handle:
        return handle.read()


class TestReadmeRuleTable:
    def test_rendered_table_is_embedded_verbatim(self):
        assert render_rule_table() in read_doc("README.md")

    def test_table_covers_every_registered_rule(self):
        table = render_rule_table()
        for spec in list(all_rules()) + list(all_project_rules()):
            assert f"| {spec.code} |" in table
            assert f"`{spec.name}`" in table


class TestDesignDoc:
    def test_interprocedural_section_exists(self):
        design = read_doc("DESIGN.md")
        assert "## Interprocedural analysis" in design

    def test_design_names_every_project_rule(self):
        design = read_doc("DESIGN.md")
        for spec in all_project_rules():
            assert spec.code in design
            assert spec.name in design


class TestReadmeFilterTable:
    def test_rendered_table_is_embedded_verbatim(self):
        from repro.filters import render_filter_table

        assert render_filter_table() in read_doc("README.md")

    def test_table_covers_every_registered_filter(self):
        from repro.filters import filter_names, render_filter_table

        table = render_filter_table()
        for name in filter_names():
            assert f"| `{name}` |" in table


class TestDesignFilterCascade:
    def test_cascade_section_exists(self):
        assert "## Filter cascade (`repro/filters`)" in read_doc("DESIGN.md")

    def test_section_names_every_registered_filter(self):
        from repro.filters import filter_names

        design = read_doc("DESIGN.md")
        for name in filter_names():
            assert f"`{name}`" in design

    def test_section_names_the_telemetry_surface(self):
        design = read_doc("DESIGN.md")
        assert "pipeline_cascade_depth" in design
        assert "filter_batch" in design
        assert "publish_cascade" in design


class TestReadmeProfileTable:
    def test_rendered_table_is_embedded_verbatim(self):
        """Regenerate with ``PYTHONPATH=src python -m repro.genome.reads``
        on drift."""
        from repro.genome.reads import render_profile_table

        assert render_profile_table() in read_doc("README.md")

    def test_table_covers_every_registered_profile(self):
        from repro.genome.reads import profile_names, render_profile_table

        table = render_profile_table()
        for name in profile_names():
            assert f"| `{name}` |" in table


class TestDesignWorkloadsAndScenarios:
    def test_section_exists(self):
        design = read_doc("DESIGN.md")
        assert "## Workloads & scenarios" in design

    def test_section_names_every_read_profile(self):
        from repro.genome.reads import profile_names

        design = read_doc("DESIGN.md")
        for name in profile_names():
            assert f"`{name}`" in design

    def test_section_names_the_scenario_difftest_pairs(self):
        design = read_doc("DESIGN.md")
        for pair in (
            "longread-adaptive-vs-dp",
            "pairedend-rescue-vs-dp",
            "sv-chimeric-vs-dp",
        ):
            assert f"`{pair}`" in design
        for family in ("long_read_indel", "paired_end", "sv_chimeric"):
            assert f"`{family}`" in design

    def test_section_names_the_pair_telemetry_surface(self):
        design = read_doc("DESIGN.md")
        assert "publish_pairs" in design
        assert "_pairs_proper_fraction" in design
        assert "`AdaptivePolicy`" in design


class TestPerfTrajectoryDocs:
    def test_design_section_exists(self):
        assert "## Perf trajectory (`repro/perf`)" in read_doc("DESIGN.md")

    def test_design_pins_the_schema_version(self):
        from repro.perf.schema import BENCH_SCHEMA_VERSION

        design = read_doc("DESIGN.md")
        assert (
            f"`BENCH_SCHEMA_VERSION = {BENCH_SCHEMA_VERSION}`" in design
        )

    def test_design_names_every_gate_mode_and_tolerance(self):
        from repro.perf.gate import DEFAULT_TOLERANCE

        design = read_doc("DESIGN.md")
        for mode, tolerance in DEFAULT_TOLERANCE.items():
            assert f"`{mode}`" in design
            assert f"**{tolerance}**" in design

    def test_design_names_every_gate_outcome(self):
        from repro.perf.gate import (
            OUTCOME_FAIL,
            OUTCOME_FINGERPRINT_MISMATCH,
            OUTCOME_MISSING_BASELINE,
            OUTCOME_PASS,
        )

        design = read_doc("DESIGN.md")
        for outcome in (
            OUTCOME_PASS,
            OUTCOME_FAIL,
            OUTCOME_MISSING_BASELINE,
            OUTCOME_FINGERPRINT_MISMATCH,
        ):
            assert f"`{outcome}`" in design

    def test_design_names_every_workload_profile(self):
        from repro.perf.workloads import workload_names

        design = read_doc("DESIGN.md")
        for name in workload_names():
            assert f"`{name}`" in design

    def test_readme_quickstart_covers_every_subcommand(self):
        readme = read_doc("README.md")
        assert "### Perf trajectory" in readme
        for command in ("run", "record", "history", "gate", "trace-diff"):
            assert f"repro-perf {command}" in readme
