"""Inline-suppression behaviour: parsing, filtering, and misuse findings."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.suppress import is_suppressed, parse_suppressions


def dedent(source):
    return textwrap.dedent(source)


class TestParsing:
    def test_single_and_multi_rule_directives(self):
        source = dedent(
            """
            x = 1  # genaxlint: disable=wall-clock
            y = 2  # genaxlint: disable=wall-clock,unseeded-random
            """
        )
        suppressions = parse_suppressions(source)
        assert is_suppressed(suppressions, 2, "wall-clock")
        assert not is_suppressed(suppressions, 2, "unseeded-random")
        assert is_suppressed(suppressions, 3, "unseeded-random")

    def test_disable_all(self):
        suppressions = parse_suppressions("x = 1  # genaxlint: disable=all\n")
        assert is_suppressed(suppressions, 1, "anything")

    def test_directive_inside_string_ignored(self):
        suppressions = parse_suppressions(
            "note = 'genaxlint: disable=wall-clock'\n"
        )
        assert suppressions == {}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}


class TestFiltering:
    def test_suppressed_finding_dropped(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=wall-clock
            """
        )
        assert [f for f in lint_source(source) if f.rule == "wall-clock"] == []

    def test_suppression_is_line_scoped(self):
        source = dedent(
            """
            import time

            def measure():
                a = time.time()  # genaxlint: disable=wall-clock
                b = time.time()
                return a, b
            """
        )
        found = [f for f in lint_source(source) if f.rule == "wall-clock"]
        assert len(found) == 1
        assert found[0].line == 6

    def test_wrong_rule_name_does_not_suppress(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=unseeded-random
            """
        )
        found = [f for f in lint_source(source) if f.rule == "wall-clock"]
        assert len(found) == 1


class TestMisuse:
    def test_unknown_rule_name_in_suppression_is_a_finding(self):
        source = "x = 1  # genaxlint: disable=no-such-rule\n"
        found = lint_source(source)
        assert len(found) == 1
        assert found[0].code == "GX002"
        assert "no-such-rule" in found[0].message

    def test_malformed_directive_is_a_finding(self):
        source = "x = 1  # genaxlint: enable=wall-clock\n"
        found = lint_source(source)
        assert len(found) == 1
        assert found[0].code == "GX002"

    def test_syntax_error_is_a_finding_not_a_crash(self):
        found = lint_source("def broken(:\n")
        assert len(found) == 1
        assert found[0].code == "GX001"
        assert found[0].rule == "parse-error"
