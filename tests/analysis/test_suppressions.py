"""Inline-suppression behaviour: parsing, filtering, and misuse findings."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.suppress import is_suppressed, parse_suppressions


def dedent(source):
    return textwrap.dedent(source)


class TestParsing:
    def test_single_and_multi_rule_directives(self):
        source = dedent(
            """
            x = 1  # genaxlint: disable=wall-clock
            y = 2  # genaxlint: disable=wall-clock,unseeded-random
            """
        )
        suppressions = parse_suppressions(source)
        assert is_suppressed(suppressions, 2, "wall-clock")
        assert not is_suppressed(suppressions, 2, "unseeded-random")
        assert is_suppressed(suppressions, 3, "unseeded-random")

    def test_disable_all(self):
        suppressions = parse_suppressions("x = 1  # genaxlint: disable=all\n")
        assert is_suppressed(suppressions, 1, "anything")

    def test_directive_inside_string_ignored(self):
        suppressions = parse_suppressions(
            "note = 'genaxlint: disable=wall-clock'\n"
        )
        assert suppressions == {}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}


class TestFiltering:
    def test_suppressed_finding_dropped(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=wall-clock
            """
        )
        assert [f for f in lint_source(source) if f.rule == "wall-clock"] == []

    def test_suppression_is_line_scoped(self):
        source = dedent(
            """
            import time

            def measure():
                a = time.time()  # genaxlint: disable=wall-clock
                b = time.time()
                return a, b
            """
        )
        found = [f for f in lint_source(source) if f.rule == "wall-clock"]
        assert len(found) == 1
        assert found[0].line == 6

    def test_wrong_rule_name_does_not_suppress(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=unseeded-random
            """
        )
        found = [f for f in lint_source(source) if f.rule == "wall-clock"]
        assert len(found) == 1


class TestMisuse:
    def test_unknown_rule_name_in_suppression_is_a_finding(self):
        source = "x = 1  # genaxlint: disable=no-such-rule\n"
        found = lint_source(source)
        assert len(found) == 1
        assert found[0].code == "GX002"
        assert "no-such-rule" in found[0].message

    def test_malformed_directive_is_a_finding(self):
        source = "x = 1  # genaxlint: enable=wall-clock\n"
        found = lint_source(source)
        assert len(found) == 1
        assert found[0].code == "GX002"

    def test_syntax_error_is_a_finding_not_a_crash(self):
        found = lint_source("def broken(:\n")
        assert len(found) == 1
        assert found[0].code == "GX001"
        assert found[0].rule == "parse-error"


class TestUnusedSuppressionAudit:
    """GX003: the unused-ignore audit (mirror of mypy warn_unused_ignores)."""

    def test_stale_suppression_warns(self):
        source = dedent(
            """
            def measure(clock):
                return clock()  # genaxlint: disable=wall-clock
            """
        )
        found = lint_source(source)
        assert [f.code for f in found] == ["GX003"]
        assert found[0].rule == "unused-suppression"
        assert found[0].severity.value == "warning"
        assert "'wall-clock'" in found[0].message
        assert found[0].line == 3

    def test_used_suppression_does_not_warn(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=wall-clock
            """
        )
        assert [f.code for f in lint_source(source)] == []

    def test_mixed_directive_reports_only_stale_names(self):
        source = dedent(
            """
            import time

            def measure():
                return time.time()  # genaxlint: disable=wall-clock,unseeded-random
            """
        )
        found = lint_source(source)
        assert [f.code for f in found] == ["GX003"]
        assert "'unseeded-random'" in found[0].message
        assert "'wall-clock'" not in found[0].message

    def test_stale_disable_all_warns(self):
        source = dedent(
            """
            def measure(clock):
                return clock()  # genaxlint: disable=all
            """
        )
        found = lint_source(source)
        assert [f.code for f in found] == ["GX003"]

    def test_unknown_name_reported_once_as_gx002_not_twice(self):
        # GX002 owns unknown names; the audit must not pile a GX003 on top.
        found = lint_source("x = 1  # genaxlint: disable=no-such-rule\n")
        assert [f.code for f in found] == ["GX002"]

    def test_project_rule_suppression_counts_as_used(self):
        # The audit runs after the project phase, so a directive silencing
        # a GX5xx finding is "used", not stale.
        source = dedent(
            """
            import numpy as np

            def bump(values):
                words = np.asarray(values, dtype=np.uint64)
                return words + words  # genaxlint: disable=uint64-wrap
            """
        )
        assert [f.code for f in lint_source(source, path="src/fake/kern.py")] == []

    def test_audit_suppressible_on_its_own_line(self):
        source = dedent(
            """
            def measure(clock):
                return clock()  # genaxlint: disable=wall-clock,unused-suppression
            """
        )
        assert [f.code for f in lint_source(source)] == []

    def test_audit_can_be_disabled(self):
        source = dedent(
            """
            def measure(clock):
                return clock()  # genaxlint: disable=wall-clock
            """
        )
        assert lint_source(source, audit=False) == []
