"""Fixture tests for the GX6xx worker-purity family.

Fixtures are inline source strings (single-module graphs via
``lint_source``); each seeds the exact fork-visible bug class the rule
exists to catch, plus the clean spelling that must not be flagged.
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.config import SanctionedSite


def findings_for(source, rule, path="src/fake/pool.py"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), path=path)
        if f.rule == rule
    ]


class TestWorkerGlobalState:
    def test_worker_global_write_flagged(self):
        found = findings_for(
            """
            STATE = None

            def _init_worker(value):
                global STATE
                STATE = value

            def driver(pool, value):
                return pool.submit(_init_worker, value)
            """,
            "worker-global-state",
        )
        assert len(found) == 1
        assert found[0].code == "GX601"
        assert "fake.pool._init_worker" in found[0].message
        assert "assigns module global" in found[0].message

    def test_container_mutation_in_closure_flagged(self):
        found = findings_for(
            """
            CACHE = {}

            def _work(key, value):
                CACHE[key] = value
                return value

            def driver(pool, key, value):
                return pool.submit(_work, key, value)
            """,
            "worker-global-state",
        )
        assert len(found) == 1
        assert "assigns an item of" in found[0].message

    def test_fork_handoff_read_flagged(self):
        # The parent stashes state in a global before forking; the worker
        # reads it.  Works under fork, silently None under spawn.
        found = findings_for(
            """
            SHARED = None

            def stage(tables):
                global SHARED
                SHARED = tables

            def _work(chunk):
                return SHARED, chunk

            def driver(pool, chunk):
                return pool.submit(_work, chunk)
            """,
            "worker-global-state",
        )
        reads = [f for f in found if "parent side of the fork" in f.message]
        assert len(reads) == 1
        assert "fake.pool.SHARED" in reads[0].message
        assert "fake.pool.stage" in reads[0].message

    def test_read_with_all_writers_in_closure_not_double_reported(self):
        # The write is the finding; a read of the same global by another
        # closure function adds nothing.
        found = findings_for(
            """
            STATE = None

            def _init(value):
                global STATE
                STATE = value

            def _work(chunk):
                return STATE, chunk

            def driver(pool, value, chunk):
                pool.submit(_init, value)
                return pool.submit(_work, chunk)
            """,
            "worker-global-state",
        )
        assert len(found) == 1
        assert "assigns module global" in found[0].message

    def test_function_outside_closure_clean(self):
        found = findings_for(
            """
            STATE = None

            def parent_only(value):
                global STATE
                STATE = value
            """,
            "worker-global-state",
        )
        assert found == []

    def test_extend_batch_is_a_worker_root(self):
        found = findings_for(
            """
            SEEN = {}

            def _note(value):
                SEEN[value] = True
                return value

            class Engine:
                def extend_batch(self, value):
                    return _note(value)
            """,
            "worker-global-state",
        )
        assert len(found) == 1
        assert "fake.pool.Engine.extend_batch" in found[0].message

    def test_sanctioned_site_suppressed(self, monkeypatch):
        import repro.analysis.config as config

        monkeypatch.setattr(
            config,
            "WORKER_ALLOWLIST",
            (
                SanctionedSite(
                    site="fake.pool._init_worker",
                    rule="worker-global-state",
                    reason="test fixture sanction",
                ),
            ),
        )
        found = findings_for(
            """
            STATE = None

            def _init_worker(value):
                global STATE
                STATE = value

            def driver(pool, value):
                return pool.submit(_init_worker, value)
            """,
            "worker-global-state",
        )
        assert found == []


class TestWorkerImpureCall:
    def test_clock_call_in_closure_flagged(self):
        found = findings_for(
            """
            from time import perf_counter

            def _work(chunk):
                started = perf_counter()
                return chunk, started

            def driver(pool, chunk):
                return pool.submit(_work, chunk)
            """,
            "worker-impure-call",
        )
        assert len(found) == 1
        assert found[0].code == "GX602"
        assert "time.perf_counter()" in found[0].message
        assert "fake.pool._work" in found[0].message

    def test_taint_found_transitively(self):
        found = findings_for(
            """
            import time

            def _helper():
                return time.monotonic()

            def _work(chunk):
                return chunk, _helper()

            def driver(pool, chunk):
                return pool.submit(_work, chunk)
            """,
            "worker-impure-call",
        )
        assert len(found) == 1
        assert "fake.pool._helper" in found[0].message

    def test_module_rng_flagged_seeded_generator_clean(self):
        source = """
            import numpy as np

            def _bad(chunk):
                return np.random.rand(len(chunk))

            def _good(chunk, seed):
                return np.random.default_rng(seed).random(len(chunk))

            def driver(pool, chunk, seed):
                pool.submit(_bad, chunk)
                return pool.submit(_good, chunk, seed)
            """
        found = findings_for(source, "worker-impure-call")
        assert len(found) == 1
        assert "numpy.random.rand" in found[0].message

    def test_call_outside_closure_clean(self):
        found = findings_for(
            """
            import time

            def parent_timer():
                return time.perf_counter()
            """,
            "worker-impure-call",
        )
        assert found == []

    def test_sanctioned_site_suppressed(self, monkeypatch):
        import repro.analysis.config as config

        monkeypatch.setattr(
            config,
            "WORKER_ALLOWLIST",
            (
                SanctionedSite(
                    site="fake.pool._work",
                    rule="worker-impure-call",
                    reason="test fixture sanction",
                ),
            ),
        )
        found = findings_for(
            """
            import time

            def _work(chunk):
                return chunk, time.perf_counter()

            def driver(pool, chunk):
                return pool.submit(_work, chunk)
            """,
            "worker-impure-call",
        )
        assert found == []


class TestWorkerUnpicklableCapture:
    def test_lambda_payload_flagged(self):
        found = findings_for(
            """
            def _work(chunk, key):
                return sorted(chunk, key=key)

            def driver(pool, chunk):
                return pool.submit(_work, chunk, lambda item: item[0])
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert found[0].code == "GX603"
        assert "lambda" in found[0].message

    def test_generator_expression_payload_flagged(self):
        found = findings_for(
            """
            def _work(items):
                return list(items)

            def driver(pool, chunks):
                return pool.submit(_work, (c for c in chunks))
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert "generator expression" in found[0].message

    def test_open_handle_payload_flagged(self):
        found = findings_for(
            """
            def _work(handle):
                return handle.read()

            def driver(pool, path):
                return pool.submit(_work, open(path))
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert "open()" in found[0].message

    def test_nested_function_payload_flagged(self):
        found = findings_for(
            """
            def _work(callback, chunk):
                return callback(chunk)

            def driver(pool, chunk):
                def score(item):
                    return item[0]

                return pool.submit(_work, score, chunk)
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert "<locals>" in found[0].message

    def test_module_object_payload_flagged(self):
        found = findings_for(
            """
            import json

            def _work(codec, chunk):
                return codec.dumps(chunk)

            def driver(pool, chunk):
                return pool.submit(_work, json, chunk)
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert "module object" in found[0].message

    def test_plain_data_payload_clean(self):
        found = findings_for(
            """
            def _work(chunk, limit):
                return chunk[:limit]

            def driver(pool, chunk):
                return pool.submit(_work, chunk, 8)
            """,
            "worker-unpicklable-capture",
        )
        assert found == []

    def test_initargs_payloads_checked(self):
        found = findings_for(
            """
            from concurrent.futures import ProcessPoolExecutor

            def _init(handle):
                return handle

            def driver(path, work):
                with ProcessPoolExecutor(
                    initializer=_init, initargs=(open(path),)
                ) as pool:
                    return pool.map(work, [1])
            """,
            "worker-unpicklable-capture",
        )
        assert len(found) == 1
        assert "open()" in found[0].message
