"""Unit tests for the project symbol/call graph substrate.

Fixtures are source *strings* assembled into :class:`SourceModule` sets,
never real repo code, so the repo self-check stays clean.
"""

import ast
import textwrap

from repro.analysis.graph import (
    ProjectGraph,
    SourceModule,
    module_name_for_path,
)


def make_module(path, source):
    source = textwrap.dedent(source)
    return SourceModule.from_source(path, source, ast.parse(source))


def make_graph(*modules):
    return ProjectGraph([make_module(path, source) for path, source in modules])


class TestModuleNames:
    def test_src_layout(self):
        assert (
            module_name_for_path("src/repro/align/bitvector.py")
            == "repro.align.bitvector"
        )

    def test_package_init_collapses(self):
        assert module_name_for_path("src/repro/align/__init__.py") == "repro.align"

    def test_no_src_component_uses_relative_parts(self):
        assert (
            module_name_for_path("tests/analysis/test_graph.py")
            == "tests.analysis.test_graph"
        )

    def test_last_src_component_wins(self):
        assert module_name_for_path("work/src/vendor/src/pkg/mod.py") == "pkg.mod"


class TestSymbolIndexing:
    def test_functions_classes_and_globals_indexed(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                LIMIT = 8

                def helper():
                    return LIMIT

                class Engine:
                    def run(self):
                        return helper()
                """,
            )
        )
        assert "pkg.mod.helper" in graph.functions
        assert "pkg.mod.Engine.run" in graph.functions
        assert "LIMIT" in graph.modules["pkg.mod"].global_names
        assert graph.functions["pkg.mod.Engine.run"].class_name == "Engine"

    def test_nested_function_qualname_uses_locals(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def outer():
                    def inner():
                        return 1
                    return inner
                """,
            )
        )
        assert "pkg.mod.outer.<locals>.inner" in graph.functions
        assert "pkg.mod.outer.<locals>.inner" in graph.calls["pkg.mod.outer"]

    def test_conditional_module_globals_still_count(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                import os

                if os.name == "posix":
                    BACKEND = "fork"
                else:
                    BACKEND = "spawn"
                """,
            )
        )
        assert "BACKEND" in graph.modules["pkg.mod"].global_names


class TestResolution:
    def test_direct_call_edge(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def callee():
                    return 1

                def caller():
                    return callee()
                """,
            )
        )
        assert "pkg.mod.callee" in graph.calls["pkg.mod.caller"]

    def test_import_alias_edge_across_modules(self):
        graph = make_graph(
            (
                "src/pkg/a.py",
                """
                def work():
                    return 1
                """,
            ),
            (
                "src/pkg/b.py",
                """
                from pkg.a import work as w

                def driver():
                    return w()
                """,
            ),
        )
        assert "pkg.a.work" in graph.calls["pkg.b.driver"]

    def test_reexport_chain_resolves(self):
        graph = make_graph(
            (
                "src/pkg/impl.py",
                """
                def work():
                    return 1
                """,
            ),
            (
                "src/pkg/__init__.py",
                """
                from pkg.impl import work
                """,
            ),
            (
                "src/other/use.py",
                """
                import pkg

                def driver():
                    return pkg.work()
                """,
            ),
        )
        assert "pkg.impl.work" in graph.calls["other.use.driver"]

    def test_self_method_resolves_through_base_class(self):
        graph = make_graph(
            (
                "src/pkg/base.py",
                """
                class Base:
                    def step(self):
                        return 1
                """,
            ),
            (
                "src/pkg/derived.py",
                """
                from pkg.base import Base

                class Derived(Base):
                    def run(self):
                        return self.step()
                """,
            ),
        )
        assert "pkg.base.Base.step" in graph.calls["pkg.derived.Derived.run"]

    def test_bare_reference_counts_as_edge(self):
        # A function handed away as a value is about to be called.
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def worker(chunk):
                    return chunk

                def driver(pool, chunk):
                    return pool.submit(worker, chunk)
                """,
            )
        )
        assert "pkg.mod.worker" in graph.calls["pkg.mod.driver"]

    def test_default_argument_reference_counts_as_edge(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def tick():
                    return 0.0

                def measure(clock=tick):
                    return clock()
                """,
            )
        )
        assert "pkg.mod.tick" in graph.calls["pkg.mod.measure"]

    def test_unresolvable_calls_contribute_no_edges(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def driver(registry):
                    return registry.lookup("x")()
                """,
            )
        )
        assert graph.calls["pkg.mod.driver"] == set()

    def test_canonical_name_rewrites_import_head(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                from time import perf_counter
                import numpy as np
                """,
            )
        )
        assert graph.canonical_name("pkg.mod", "perf_counter") == "time.perf_counter"
        assert (
            graph.canonical_name("pkg.mod", "np.random.rand") == "numpy.random.rand"
        )
        assert graph.canonical_name("pkg.mod", "unbound") == "unbound"


class TestGlobalSummaries:
    def test_global_write_recorded(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                STATE = None

                def install(value):
                    global STATE
                    STATE = value
                """,
            )
        )
        writes = graph.global_writes["pkg.mod.install"]
        assert [target for target, _, _ in writes] == ["pkg.mod.STATE"]
        assert graph.functions_writing("pkg.mod.STATE") == frozenset(
            {"pkg.mod.install"}
        )

    def test_container_mutation_recorded(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                REGISTRY = {}

                def register(name, value):
                    REGISTRY[name] = value
                """,
            )
        )
        writes = graph.global_writes["pkg.mod.register"]
        assert [target for target, _, _ in writes] == ["pkg.mod.REGISTRY"]

    def test_global_read_recorded_and_locals_excluded(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                SHARED = 3

                def reader():
                    return SHARED

                def shadower():
                    SHARED = 5
                    return SHARED
                """,
            )
        )
        reads = [target for target, _ in graph.global_reads["pkg.mod.reader"]]
        assert reads == ["pkg.mod.SHARED"]
        assert graph.global_reads["pkg.mod.shadower"] == []


class TestDispatchSites:
    def test_submit_and_initializer_sites_collected(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                from concurrent.futures import ProcessPoolExecutor

                def init(tables):
                    return tables

                def work(chunk):
                    return chunk

                def driver(tables, chunk):
                    with ProcessPoolExecutor(initializer=init, initargs=(tables,)) as pool:
                        return pool.submit(work, chunk)
                """,
            )
        )
        kinds = sorted(site.kind for site in graph.dispatch_sites)
        assert kinds == ["initializer", "submit"]
        submit = next(s for s in graph.dispatch_sites if s.kind == "submit")
        assert submit.enclosing == "pkg.mod.driver"
        assert len(submit.callable_exprs) == 1
        assert len(submit.payload_exprs) == 1

    def test_module_level_dispatch_site_collected(self):
        graph = make_graph(
            (
                "src/pkg/script.py",
                """
                import multiprocessing

                def work():
                    return 1

                process = multiprocessing.Process(target=work)
                """,
            )
        )
        assert len(graph.dispatch_sites) == 1
        assert graph.dispatch_sites[0].enclosing is None
        assert graph.dispatch_sites[0].kind == "target"


class TestReachability:
    def test_closure_reports_origin_root(self):
        graph = make_graph(
            (
                "src/pkg/mod.py",
                """
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def root():
                    return mid()

                def unrelated():
                    return 0
                """,
            )
        )
        closure = graph.reachable(["pkg.mod.root"])
        assert closure["pkg.mod.leaf"] == "pkg.mod.root"
        assert closure["pkg.mod.mid"] == "pkg.mod.root"
        assert "pkg.mod.unrelated" not in closure

    def test_unknown_roots_are_ignored(self):
        graph = make_graph(("src/pkg/mod.py", "x = 1\n"))
        assert graph.reachable(["pkg.mod.missing"]) == {}
