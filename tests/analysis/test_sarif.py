"""SARIF export: schema shape, rule metadata, and end-to-end emission.

The end-to-end class is the acceptance check for the reporting pipeline:
seeded fixture violations (file-rule *and* project-rule families) must
come out of the CLI in both JSON and SARIF with intact locations.
"""

import json
import textwrap

import pytest

from repro.analysis import lint_source, render_sarif
from repro.analysis.cli import main
from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION

#: One GX102 wall-clock hit (file rule) and one GX501 wrap hit (project
#: rule), seeded in a fixture written to tmp_path — never to the repo.
MIXED_BAD_SOURCE = textwrap.dedent(
    """
    import time

    import numpy as np


    def measure():
        return time.time()


    def bump(values):
        words = np.asarray(values, dtype=np.uint64)
        return words + words
    """
).lstrip()


def sample_findings():
    return [
        Finding(
            path="src/pkg/mod.py",
            line=12,
            column=5,
            rule="wall-clock",
            code="GX102",
            message="time.time() read",
            hint="inject a clock",
        ),
        Finding(
            path="src/pkg/other.py",
            line=3,
            column=1,
            rule="unused-suppression",
            code="GX003",
            message="suppression matched nothing",
            hint="delete it",
            severity=Severity.WARNING,
        ),
    ]


class TestSarifDocument:
    def test_schema_and_version(self):
        log = json.loads(render_sarif([]))
        assert log["version"] == SARIF_VERSION
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1
        assert log["runs"][0]["results"] == []

    def test_driver_publishes_every_rule(self):
        log = json.loads(render_sarif([]))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        codes = [entry["id"] for entry in rules]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        # Meta findings, a file rule, and both new project families.
        for code in ("GX001", "GX003", "GX102", "GX501", "GX601"):
            assert code in codes
        by_code = {entry["id"]: entry for entry in rules}
        assert by_code["GX003"]["defaultConfiguration"]["level"] == "warning"
        assert by_code["GX501"]["defaultConfiguration"]["level"] == "error"
        assert by_code["GX501"]["name"] == "uint64-wrap"

    def test_results_reference_rules_by_index(self):
        log = json.loads(render_sarif(sample_findings()))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        results = log["runs"][0]["results"]
        assert len(results) == 2
        for result in results:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_location_and_severity(self):
        log = json.loads(render_sarif(sample_findings()))
        first, second = log["runs"][0]["results"]
        assert first["ruleId"] == "GX102"
        assert first["level"] == "error"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 12, "startColumn": 5}
        uri = first["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri == "src/pkg/mod.py"
        assert second["level"] == "warning"

    def test_message_carries_hint(self):
        log = json.loads(render_sarif(sample_findings()))
        text = log["runs"][0]["results"][0]["message"]["text"]
        assert "time.time() read" in text
        assert "inject a clock" in text

    def test_fingerprint_stable_per_site(self):
        def fingerprints(log):
            return [
                r["partialFingerprints"]["genaxlint/v1"]
                for r in log["runs"][0]["results"]
            ]

        first = json.loads(render_sarif(sample_findings()))
        second = json.loads(render_sarif(sample_findings()))
        assert fingerprints(first) == fingerprints(second)
        assert fingerprints(first)[0] == "GX102:src/pkg/mod.py:12"

    def test_uri_outside_base_dir_left_intact(self):
        finding = sample_findings()[0]
        log = json.loads(render_sarif([finding], base_dir="/nonexistent/elsewhere"))
        uri = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "src/pkg/mod.py"


@pytest.fixture()
def mixed_tree(tmp_path):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "mixed.py").write_text(MIXED_BAD_SOURCE)
    return tmp_path


class TestEndToEnd:
    """Seeded violations must surface in every output format (self-check)."""

    def expected_rules(self):
        return {"wall-clock", "uint64-wrap"}

    def test_lint_source_detects_both_families(self):
        findings = lint_source(MIXED_BAD_SOURCE, path="src/pkg/mixed.py")
        assert self.expected_rules() <= {f.rule for f in findings}

    def test_json_emission(self, mixed_tree, capsys):
        code = main(["--format", "json", str(mixed_tree)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-genaxlint"
        assert payload["finding_count"] == len(payload["findings"])
        rules = {entry["rule"] for entry in payload["findings"]}
        assert self.expected_rules() <= rules
        for entry in payload["findings"]:
            assert entry["path"].endswith("mixed.py")
            assert entry["line"] > 0

    def test_sarif_emission_to_file(self, mixed_tree, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        code = main(
            ["--format", "sarif", "--output", str(out), str(mixed_tree)]
        )
        assert code == 1
        assert capsys.readouterr().out == ""
        log = json.loads(out.read_text())
        assert log["version"] == SARIF_VERSION
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} >= {"GX102", "GX501"}
        driver_codes = {
            rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {r["ruleId"] for r in results} <= driver_codes

    def test_warning_only_findings_exit_zero(self, tmp_path, capsys):
        # A stale suppression is a GX003 warning: reported, not gating.
        target = tmp_path / "stale.py"
        target.write_text(
            "def measure(clock):\n"
            "    return clock()  # genaxlint: disable=wall-clock\n"
        )
        code = main(["--format", "json", str(target)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == ["GX003"]
        assert [f["severity"] for f in payload["findings"]] == ["warning"]
