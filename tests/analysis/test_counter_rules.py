"""Unit tests for the counter-hygiene rules (GX201/GX202).

The regression this guards: a counter field added to a stats dataclass
without a matching merge entry must be caught at lint time, because the
parallel driver silently drops it otherwise (the ``table_bytes_streamed``
audit from PR 1, made mechanical).
"""

import textwrap

import repro.analysis.rules.counters as counters_rules
from repro.analysis import lint_source
from repro.analysis.config import (
    COUNTER_ALLOWLIST,
    allowlist_reasons,
    merge_exempt_fields,
    shard_variant_counters,
)


def findings_for(source, rule):
    return [
        f for f in lint_source(textwrap.dedent(source)) if f.rule == rule
    ]


COMPLETE_STATS = """
    from dataclasses import dataclass

    @dataclass
    class FixtureStats:
        hits: int = 0
        misses: int = 0

        def merge(self, other):
            self.hits += other.hits
            self.misses += other.misses
    """

# The regression fixture: ``misses`` declared but never merged.
UNMERGED_FIELD_STATS = """
    from dataclasses import dataclass

    @dataclass
    class FixtureStats:
        hits: int = 0
        misses: int = 0

        def merge(self, other):
            self.hits += other.hits
    """


class TestCounterMerge:
    def test_complete_merge_clean(self):
        assert findings_for(COMPLETE_STATS, "counter-merge") == []

    def test_field_added_without_merge_entry_is_caught(self):
        found = findings_for(UNMERGED_FIELD_STATS, "counter-merge")
        assert len(found) == 1
        assert found[0].code == "GX201"
        assert "FixtureStats.misses" in found[0].message
        # The finding points at the field declaration, not the class head.
        assert "COUNTER_ALLOWLIST" in found[0].hint

    def test_nested_merge_and_extend_count_as_handled(self):
        source = """
            from dataclasses import dataclass, field

            @dataclass
            class FixtureStats:
                inner: object = None
                samples: list = field(default_factory=list)

                def merge(self, other):
                    self.inner.merge(other.inner)
                    self.samples.extend(other.samples)
            """
        assert findings_for(source, "counter-merge") == []

    def test_docstring_mention_does_not_count_as_merged(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class FixtureStats:
                hits: int = 0

                def merge(self, other):
                    "merges hits"
            """
        found = findings_for(source, "counter-merge")
        assert len(found) == 1

    def test_stats_class_without_merge_is_out_of_scope(self):
        source = """
            from dataclasses import dataclass

            @dataclass
            class SnapshotOnlyStats:
                hits: int = 0
            """
        assert findings_for(source, "counter-merge") == []

    def test_non_dataclass_ignored(self):
        source = """
            class FixtureStats:
                def merge(self, other):
                    pass
            """
        assert findings_for(source, "counter-merge") == []

    def test_allowlisted_field_is_exempt(self, monkeypatch):
        monkeypatch.setattr(
            counters_rules,
            "merge_exempt_fields",
            lambda: frozenset({"FixtureStats.misses"}),
        )
        assert findings_for(UNMERGED_FIELD_STATS, "counter-merge") == []


class TestCounterSnapshot:
    def test_complete_as_dict_clean(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class FixtureCounters:
                hits: int
                misses: int

                def as_dict(self):
                    return {"hits": self.hits, "misses": self.misses}
            """
        assert findings_for(source, "counter-snapshot") == []

    def test_missing_export_is_caught(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class FixtureCounters:
                hits: int
                misses: int

                def as_dict(self):
                    return {"hits": self.hits}
            """
        found = findings_for(source, "counter-snapshot")
        assert len(found) == 1
        assert found[0].code == "GX202"
        assert "misses" in found[0].message


class TestAllowlistPolicy:
    def test_table_bytes_streamed_is_documented_shard_variant(self):
        assert "table_bytes_streamed" in shard_variant_counters()
        reasons = allowlist_reasons()
        assert "SeedingStats.table_bytes_streamed" in reasons
        # The allowlist IS the documentation: reasons must be substantive.
        assert all(len(reason) > 40 for reason in reasons.values())

    def test_shipped_allowlist_has_no_merge_exemptions(self):
        # Every current counter is merged; the merge-exemption escape
        # hatch exists but starts empty.  If this fails, a new exemption
        # was added — make sure DESIGN.md's allowlist policy section was
        # updated with it.
        assert merge_exempt_fields() == frozenset()
        assert all(entry.reason for entry in COUNTER_ALLOWLIST)
