"""Unit tests for the pickle-safety rule (GX301)."""

import textwrap

from repro.analysis import lint_source


def findings_for(source, rule="pickle-callable"):
    return [
        f for f in lint_source(textwrap.dedent(source)) if f.rule == rule
    ]


class TestPickleCallable:
    def test_lambda_submitted_to_pool_is_caught(self):
        found = findings_for(
            """
            def run(pool, chunk):
                return pool.submit(lambda c: c * 2, chunk)
            """
        )
        assert len(found) == 1
        assert found[0].code == "GX301"
        assert "lambda" in found[0].message
        assert "engine.py" in found[0].hint

    def test_nested_function_submitted_is_caught(self):
        found = findings_for(
            """
            def run(executor, chunks):
                def work(chunk):
                    return chunk * 2
                return [executor.submit(work, c) for c in chunks]
            """
        )
        assert len(found) == 1
        assert "'work'" in found[0].message

    def test_module_level_function_clean(self):
        found = findings_for(
            """
            def work(chunk):
                return chunk * 2

            def run(pool, chunks):
                return [pool.submit(work, c) for c in chunks]
            """
        )
        assert found == []

    def test_lambda_initializer_caught(self):
        found = findings_for(
            """
            def run(make_pool):
                return make_pool(max_workers=2, initializer=lambda: None)
            """
        )
        assert len(found) == 1

    def test_nested_process_target_caught(self):
        found = findings_for(
            """
            import multiprocessing

            def run():
                def job():
                    pass
                p = multiprocessing.Process(target=job)
                p.start()
            """
        )
        assert len(found) == 1

    def test_pool_map_with_lambda_caught(self):
        found = findings_for(
            """
            def run(pool, chunks):
                return pool.map(lambda c: c * 2, chunks)
            """
        )
        assert len(found) == 1

    def test_plain_map_on_non_pool_receiver_not_flagged(self):
        # ``.map`` is everywhere (pandas, executors, custom APIs); only
        # pool/executor-named receivers are in scope.
        found = findings_for(
            """
            def run(series):
                return series.map(lambda value: value * 2)
            """
        )
        assert found == []

    def test_sort_key_lambda_not_flagged(self):
        # Lambdas that never cross a process boundary are fine — the
        # engine's merge sort uses one.
        found = findings_for(
            """
            def merge(results):
                results.sort(key=lambda result: result.chunk_id)
                return results
            """
        )
        assert found == []

    def test_named_lambda_submitted_is_caught(self):
        found = findings_for(
            """
            double = lambda value: value * 2

            def run(pool, chunk):
                return pool.submit(double, chunk)
            """
        )
        assert len(found) == 1
