"""The mypy strict-typing gate, run as a test when mypy is available.

CI installs mypy and runs it as a blocking job (see
``.github/workflows/ci.yml``); locally this test gives the same signal
from the tier-1 suite, skipping cleanly on machines without mypy rather
than failing the environment.
"""

import os
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_strict_packages_pass_mypy():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "-p",
            "repro.parallel",
            "-p",
            "repro.pipeline",
            "-p",
            "repro.seeding",
            "-p",
            "repro.align",
            "-p",
            "repro.analysis",
            "-p",
            "repro.telemetry",
            "-p",
            "repro.difftest",
            "-p",
            "repro.genome",
            "-p",
            "repro.automata",
            "-p",
            "repro.core",
            "-m",
            "repro.cli",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "MYPYPATH": os.path.join(REPO_ROOT, "src")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
