"""Unit tests for the determinism rules (GX101/GX102/GX103/GX104).

Fixtures are source *strings*, never real code, so the repo self-check
(tests are linted too) stays clean.
"""

import textwrap

from repro.analysis import lint_source


def findings_for(source, rule, path="<string>"):
    return [
        f
        for f in lint_source(textwrap.dedent(source), path=path)
        if f.rule == rule
    ]


class TestUnseededRandom:
    def test_module_level_call_flagged(self):
        found = findings_for(
            """
            import random

            def pick():
                return random.randint(0, 3)
            """,
            "unseeded-random",
        )
        assert len(found) == 1
        assert found[0].code == "GX101"
        assert "random.randint" in found[0].message
        assert "random.Random(seed)" in found[0].hint

    def test_from_import_call_flagged(self):
        found = findings_for(
            """
            from random import shuffle

            def scramble(items):
                shuffle(items)
            """,
            "unseeded-random",
        )
        assert len(found) == 1
        assert "shuffle" in found[0].message

    def test_seeded_instance_clean(self):
        found = findings_for(
            """
            import random

            def pick(seed):
                rng = random.Random(seed)
                return rng.randint(0, 3)
            """,
            "unseeded-random",
        )
        assert found == []

    def test_numpy_global_flagged_seeded_generator_clean(self):
        source = """
            import numpy as np

            def bad():
                return np.random.rand(4)

            def good(seed):
                return np.random.default_rng(seed).random(4)
            """
        found = findings_for(source, "unseeded-random")
        assert len(found) == 1
        assert "numpy.random.rand" in found[0].message

    def test_unseeded_default_rng_flagged(self):
        found = findings_for(
            """
            import numpy as np

            def bad():
                return np.random.default_rng()
            """,
            "unseeded-random",
        )
        assert len(found) == 1
        assert "default_rng" in found[0].message

    def test_instance_methods_on_other_names_clean(self):
        # rng.random() is an instance draw, not the module-level global.
        found = findings_for(
            """
            def corrupt(rng):
                return rng.random() < 0.5
            """,
            "unseeded-random",
        )
        assert found == []


class TestWallClock:
    def test_time_time_flagged_with_cli_exemplar_hint(self):
        found = findings_for(
            """
            import time

            def measure():
                return time.time()
            """,
            "wall-clock",
        )
        assert len(found) == 1
        assert found[0].code == "GX102"
        # The rule cites the fixed CLI site as its exemplar (satellite).
        assert "repro/cli.py" in found[0].hint
        assert "perf_counter" in found[0].hint

    def test_from_import_flagged(self):
        found = findings_for(
            """
            from time import time

            def measure():
                return time()
            """,
            "wall-clock",
        )
        assert len(found) == 1

    def test_perf_counter_clean(self):
        # perf_counter is the *right* clock, so GX102 stays silent; its
        # placement is GX104's concern (TestClockConfinement below).
        found = findings_for(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            "wall-clock",
        )
        assert found == []


class TestClockConfinement:
    RAW_CALL = """
        import time

        def measure():
            return time.perf_counter()
        """

    def test_perf_counter_flagged_outside_clock_module(self):
        found = findings_for(self.RAW_CALL, "clock-confinement")
        assert len(found) == 1
        assert found[0].code == "GX104"
        assert "time.perf_counter()" in found[0].message
        assert "monotonic_s" in found[0].hint
        assert "ManualClock" in found[0].hint

    def test_monotonic_and_process_time_flagged(self):
        found = findings_for(
            """
            import time

            def measure():
                return time.monotonic() + time.process_time()
            """,
            "clock-confinement",
        )
        assert len(found) == 2

    def test_ns_variants_flagged(self):
        found = findings_for(
            """
            import time

            def measure():
                return time.perf_counter_ns()
            """,
            "clock-confinement",
        )
        assert len(found) == 1

    def test_from_import_flagged(self):
        found = findings_for(
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """,
            "clock-confinement",
        )
        assert len(found) == 1
        assert "perf_counter()" in found[0].message

    def test_clock_module_itself_exempt(self):
        found = findings_for(
            self.RAW_CALL,
            "clock-confinement",
            path="src/repro/telemetry/clock.py",
        )
        assert found == []

    def test_windows_path_separator_exempt(self):
        found = findings_for(
            self.RAW_CALL,
            "clock-confinement",
            path="src\\repro\\telemetry\\clock.py",
        )
        assert found == []

    def test_other_telemetry_modules_not_exempt(self):
        found = findings_for(
            self.RAW_CALL,
            "clock-confinement",
            path="src/repro/telemetry/tracer.py",
        )
        assert len(found) == 1

    def test_sanctioned_wrapper_clean(self):
        found = findings_for(
            """
            from repro.telemetry.clock import monotonic_s

            def measure():
                return monotonic_s()
            """,
            "clock-confinement",
        )
        assert found == []

    def test_sleep_not_flagged(self):
        # Only clock *reads* are confined; time.sleep is not a read.
        found = findings_for(
            """
            import time

            def pause():
                time.sleep(0.1)
            """,
            "clock-confinement",
        )
        assert found == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        found = findings_for(
            """
            def emit(items):
                for item in set(items):
                    print(item)
            """,
            "set-iteration",
        )
        assert len(found) == 1
        assert found[0].code == "GX103"
        assert "sorted" in found[0].hint

    def test_list_of_set_and_join_flagged(self):
        source = """
            def emit(items):
                order = list({1, 2, 3})
                text = ",".join(set(items))
                return order, text
            """
        found = findings_for(source, "set-iteration")
        assert len(found) == 2

    def test_comprehension_over_set_flagged(self):
        found = findings_for(
            """
            def emit(items):
                return [item for item in set(items)]
            """,
            "set-iteration",
        )
        assert len(found) == 1

    def test_sorted_set_clean(self):
        found = findings_for(
            """
            def emit(items):
                for item in sorted(set(items)):
                    print(item)
                return sorted({1, 2})
            """,
            "set-iteration",
        )
        assert found == []

    def test_set_union_iteration_flagged(self):
        found = findings_for(
            """
            def emit(a, b):
                for item in set(a) | set(b):
                    print(item)
            """,
            "set-iteration",
        )
        assert len(found) == 1
