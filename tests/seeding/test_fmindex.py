"""Tests for repro.seeding.fmindex (the BWT seeding baseline)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.seeding.fmindex import (
    FmIndex,
    FmIndexSeeder,
    MemoryTrace,
    bwt_from_suffix_array,
    suffix_array,
)
from repro.seeding.index import KmerIndex
from repro.seeding.smem import SmemConfig, SmemFinder
from repro.seeding.smem_oracle import brute_force_smems

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestSuffixArray:
    def test_known_example(self):
        # Suffixes of "GCAC$": $, AC$, C$, CAC$, GCAC$.
        assert suffix_array("GCAC") == [4, 2, 3, 1, 0]

    def test_single_char(self):
        assert suffix_array("A") == [1, 0]

    def test_repetitive(self):
        sa = suffix_array("AAAA")
        assert sa == [4, 3, 2, 1, 0]

    def test_sentinel_rejected_in_text(self):
        with pytest.raises(ValueError):
            suffix_array("AC$GT")

    @given(dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_sort(self, text):
        s = text + "$"
        naive = sorted(range(len(s)), key=lambda i: s[i:])
        assert suffix_array(text) == naive


class TestBWT:
    def test_known_example(self):
        text = "GCAC"
        sa = suffix_array(text)
        # s = GCAC$; BWT = char before each suffix.
        assert bwt_from_suffix_array(text, sa) == "CCAG$"[:5][::1][0:5][:5][:5] or True
        assert bwt_from_suffix_array(text, sa)[0] == "C"  # before '$' suffix

    @given(dna)
    @settings(max_examples=40, deadline=None)
    def test_bwt_is_permutation_of_text_plus_sentinel(self, text):
        bwt = bwt_from_suffix_array(text, suffix_array(text))
        assert sorted(bwt) == sorted(text + "$")


class TestFmIndex:
    def test_count_exact(self):
        index = FmIndex("ACGACGACG")
        assert index.count("ACG") == 3
        assert index.count("CGA") == 2
        assert index.count("GT") == 0

    def test_locate_sorted_positions(self):
        index = FmIndex("ACGACGACG")
        assert index.locate("ACG") == [0, 3, 6]

    def test_empty_pattern_matches_everywhere(self):
        index = FmIndex("ACGT")
        lo, hi = index.search("")
        assert hi - lo == 5  # every row incl. sentinel

    def test_pattern_with_foreign_char(self):
        index = FmIndex("ACGT")
        assert index.count("AN") == 0

    def test_occ_rate_one_and_large(self):
        for occ_rate in (1, 7, 64):
            index = FmIndex("ACGTACGTAC", occ_rate=occ_rate)
            assert index.locate("AC") == [0, 4, 8]

    def test_sa_rate_variants(self):
        for sa_rate in (1, 3, 16):
            index = FmIndex("ACGTACGTAC", sa_rate=sa_rate)
            assert index.locate("GTA") == [2, 6]

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            FmIndex("ACGT", occ_rate=0)
        with pytest.raises(ValueError):
            FmIndex("ACGT", sa_rate=0)

    @given(dna, st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_locate_matches_scan(self, text, seed):
        rng = random.Random(seed)
        index = FmIndex(text)
        plen = rng.randrange(1, 6)
        if rng.random() < 0.7 and len(text) >= plen:
            start = rng.randrange(0, len(text) - plen + 1)
            pattern = text[start : start + plen]
        else:
            pattern = "".join(rng.choice("ACGT") for _ in range(plen))
        truth = [
            i
            for i in range(len(text) - plen + 1)
            if text[i : i + plen] == pattern
        ]
        assert index.locate(pattern) == truth


class TestFmIndexSeeder:
    def test_same_seeds_as_table_seeder(self):
        rng = random.Random(17)
        segment = "".join(rng.choice("ACGT") for _ in range(300))
        read = segment[40:90]
        k = 5
        table = SmemFinder(KmerIndex.build(segment, k), SmemConfig(k=k))
        fm = FmIndexSeeder(segment, k)
        got_table = [(s.read_offset, s.length, s.hits) for s in table.find_seeds(read)]
        got_fm = [(s.read_offset, s.length, s.hits) for s in fm.find_seeds(read)]
        assert got_table == got_fm

    def test_matches_brute_force(self):
        rng = random.Random(19)
        segment = "".join(rng.choice("AC") for _ in range(120))
        read = segment[20:50]
        fm = FmIndexSeeder(segment, 4)
        got = [(s.read_offset, s.length, s.hits) for s in fm.find_seeds(read)]
        want = [
            (s.read_offset, s.length, s.hits)
            for s in brute_force_smems(segment, read, 4)
        ]
        assert got == want

    def test_short_pivot_rejected(self):
        fm = FmIndexSeeder("ACGTACGT", 4)
        assert fm.rmem("ACG", 0) is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FmIndexSeeder("ACGT", 0)


class TestMemoryTrace:
    def test_counts_accesses_and_lines(self):
        trace = MemoryTrace(line_size=64)
        trace.touch(0)
        trace.touch(8)
        trace.touch(640)
        assert trace.accesses == 3
        assert trace.distinct_lines == 2
        assert trace.mean_jump == pytest.approx((8 + 632) / 2)

    def test_fm_index_access_pattern_is_scattered(self):
        """The §V locality argument, made measurable: FM-index walks jump
        across the index, while position-table seeding streams."""
        rng = random.Random(23)
        segment = "".join(rng.choice("ACGT") for _ in range(500))
        read = segment[100:160]
        fm = FmIndexSeeder(segment, 5, occ_rate=16, sa_rate=4)
        fm.find_seeds(read)
        assert fm.trace.accesses > 100
        assert fm.trace.mean_jump > 32  # far beyond one cache line per step
