"""Tests for repro.seeding.cam."""

import pytest

from repro.seeding.cam import IntersectionEngine, IntersectionStats


class TestIntersection:
    def test_basic_intersection(self):
        engine = IntersectionEngine()
        result = engine.intersect([1, 5, 9], [5, 9, 20])
        assert result == [5, 9]

    def test_offset_normalization(self):
        # Incoming hits are shifted back by the offset (§V).
        engine = IntersectionEngine()
        result = engine.intersect([10, 20], [22, 32], incoming_offset=12)
        assert result == [10, 20]

    def test_empty_candidates(self):
        engine = IntersectionEngine()
        assert engine.intersect([], [1, 2]) == []

    def test_empty_incoming(self):
        engine = IntersectionEngine()
        assert engine.intersect([1, 2], []) == []

    def test_disjoint(self):
        engine = IntersectionEngine()
        assert engine.intersect([1, 2], [3, 4]) == []

    def test_result_sorted(self):
        engine = IntersectionEngine()
        assert engine.intersect([9, 1, 5], [1, 5, 9]) == [1, 5, 9]

    def test_invalid_cam_size(self):
        with pytest.raises(ValueError):
            IntersectionEngine(cam_size=0)


class TestAccounting:
    def test_cam_lookups_counted_per_incoming_hit(self):
        engine = IntersectionEngine(cam_size=512)
        engine.intersect([1, 2, 3], [1, 2, 3, 4, 5])
        assert engine.stats.cam_lookups == 5
        assert engine.stats.cam_loads == 3

    def test_binary_fallback_on_oversized_incoming(self):
        """§V: incoming lists larger than the CAM use binary search."""
        engine = IntersectionEngine(cam_size=4)
        incoming = list(range(0, 100, 2))  # 50 entries > CAM
        result = engine.intersect([10, 11, 12], incoming)
        assert result == [10, 12]
        assert engine.stats.overflow_fallbacks == 1
        assert engine.stats.search_probes > 0
        assert engine.stats.cam_lookups == 0

    def test_binary_probes_logarithmic(self):
        engine = IntersectionEngine(cam_size=4)
        incoming = list(range(1024))
        engine.intersect([5], incoming)
        # One candidate: ~log2(1024) + 1 probes, far below linear.
        assert engine.stats.search_probes <= 12

    def test_fallback_disabled_batches_the_cam(self):
        engine = IntersectionEngine(cam_size=4, use_binary_fallback=False)
        incoming = list(range(0, 40))
        result = engine.intersect([3, 7], incoming)
        assert result == [3, 7]
        assert engine.stats.overflow_fallbacks == 0
        assert engine.stats.cam_lookups == 40

    def test_smaller_side_loaded_into_cam(self):
        # The engine loads the smaller set (the 3 incoming hits) and
        # streams the 10 candidates through it.
        engine = IntersectionEngine(cam_size=3, use_binary_fallback=False)
        candidates = list(range(10))
        result = engine.intersect(candidates, [2, 5, 8])
        assert result == [2, 5, 8]
        assert engine.stats.cam_loads == 3
        assert engine.stats.cam_lookups == 10

    def test_oversized_candidate_set_batched(self):
        # Both sides exceed the CAM with fallback off: batched passes.
        engine = IntersectionEngine(cam_size=3, use_binary_fallback=False)
        candidates = list(range(8))
        incoming = [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        result = engine.intersect(candidates, incoming)
        assert result == [0, 2, 4, 6]
        # Smaller side (8 candidates) loads in 3 batches of <= 3; each batch
        # streams all 10 incoming hits.
        assert engine.stats.cam_lookups == 30

    def test_stats_merge(self):
        a = IntersectionStats(cam_lookups=5, search_probes=2, intersections=1)
        b = IntersectionStats(cam_lookups=3, overflow_fallbacks=1)
        a.merge(b)
        assert a.cam_lookups == 8
        assert a.total_lookups == 10
        assert a.overflow_fallbacks == 1
