"""Tests for repro.seeding.accelerator (segmented seeding front-end)."""

import pytest

from repro.genome.reference import make_reference
from repro.seeding.accelerator import SeedingAccelerator, SeedingLane
from repro.seeding.index import IndexTables, KmerIndex
from repro.seeding.smem import SmemConfig
from repro.seeding.smem_oracle import brute_force_smems


class TestSeedingLane:
    def test_global_coordinates(self):
        segment = "ACGTACCGTACG"
        tables = IndexTables(segment_index=1, segment_start=1000,
                             index=KmerIndex.build(segment, 4))
        lane = SeedingLane(tables, SmemConfig(k=4))
        seeds = lane.seed_read("ACGTACCG")
        assert seeds
        assert all(p >= 1000 for s in seeds for p in s.positions)
        assert any(1000 in s.positions for s in seeds)

    def test_exact_whole_read_flag(self):
        segment = "TTTT" + "ACGTACCGTT" + "GGGG"
        tables = IndexTables(0, 0, KmerIndex.build(segment, 4))
        lane = SeedingLane(tables, SmemConfig(k=4, exact_match_fast_path=True))
        seeds = lane.seed_read("ACGTACCGTT")
        assert any(s.exact_whole_read for s in seeds)


class TestSeedingAccelerator:
    @pytest.fixture(scope="class")
    def reference(self):
        return make_reference(6_000, seed=13)

    def test_finds_reads_across_all_segments(self, reference):
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=4)
        # Reads sampled from different parts of the genome.
        for start in (100, 2_000, 4_500, 5_800):
            read = reference.sequence[start : start + 60]
            seeds = accel.seed_read(read)
            starts = {p - s.read_offset for s in seeds for p in s.positions}
            assert start in starts

    def test_boundary_spanning_read_found_via_overlap(self, reference):
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=4)
        boundary = accel.segments[1].start
        read = reference.sequence[boundary - 30 : boundary + 30]
        seeds = accel.seed_read(read)
        starts = {p - s.read_offset for s in seeds for p in s.positions}
        assert boundary - 30 in starts

    def test_duplicate_hits_from_overlap_removed(self, reference):
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=4)
        read = reference.sequence[50:110]
        seeds = accel.seed_read(read)
        for seed in seeds:
            assert len(seed.positions) == len(set(seed.positions))

    def test_seeds_agree_with_whole_genome_oracle(self, reference):
        """Segmentation must not lose or invent seeds (modulo duplicates)."""
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=3)
        read = reference.sequence[1_234 : 1_234 + 50]
        got = accel.seed_read(read)
        want = brute_force_smems(reference.sequence, read, 8)
        got_map = {(s.read_offset, s.length): set(s.positions) for s in got}
        want_map = {(s.read_offset, s.length): set(s.hits) for s in want}
        # Every oracle seed hit must be discovered by the accelerator.
        for key, positions in want_map.items():
            assert key in got_map
            assert positions <= got_map[key]

    def test_stats_accumulate(self, reference):
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=2)
        accel.seed_reads([reference.sequence[0:50], reference.sequence[100:150]])
        assert accel.stats.reads_processed == 2
        assert accel.stats.finder.index_lookups > 0
        assert accel.stats.table_bytes_streamed > 0
        assert accel.stats.hits_per_read > 0

    def test_invalid_configuration(self, reference):
        with pytest.raises(ValueError):
            SeedingAccelerator(reference, segment_count=0)
        with pytest.raises(ValueError):
            SeedingAccelerator(reference, lanes=0)

    def test_sram_accounting(self, reference):
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=2)
        assert accel.sram_bytes_per_segment > 0
