"""Tests for anchor chaining (repro.seeding.chain)."""

import pytest

from repro.genome.reference import make_reference
from repro.seeding.chain import (
    ChainConfig,
    ChainStats,
    ChainedSeedProvider,
)
from repro.seeding.index import KmerIndex


@pytest.fixture(scope="module")
def reference():
    return make_reference(4_000, seed=61)


@pytest.fixture(scope="module")
def provider(reference):
    return ChainedSeedProvider(reference.sequence)


class TestChaining:
    def test_exact_read_chains_to_true_diagonal(self, reference):
        provider = ChainedSeedProvider(reference.sequence)
        read = reference.sequence[1_000:1_400]
        seeds = provider.seed(read)
        assert seeds
        # Some chain reproduces the true diagonal: position - offset = 1000.
        diagonals = {s.positions[0] - s.read_offset for s in seeds}
        assert 1_000 in diagonals

    def test_chains_never_claim_exact_whole_read(self, reference):
        provider = ChainedSeedProvider(reference.sequence)
        read = reference.sequence[500:900]
        assert all(
            not seed.exact_whole_read for seed in provider.seed(read)
        )

    def test_seed_span_covers_anchored_read_range(self, reference):
        provider = ChainedSeedProvider(reference.sequence)
        read = reference.sequence[2_000:2_500]
        seeds = provider.seed(read)
        best = max(seeds, key=lambda s: s.length)
        # A fully exact read chains end to end: the span reaches within
        # one stride + k of the read length.
        config = provider.config
        assert best.length >= len(read) - (config.stride + config.k)

    def test_unrelated_read_yields_no_chains(self, reference):
        import random

        from repro.genome.sequence import random_dna

        provider = ChainedSeedProvider(reference.sequence)
        # An independent random read: a 13-mer collision against a 4 kbp
        # genome has probability ~6e-5 per anchor, so no chain forms.
        read = random_dna(200, random.Random(999))
        assert provider.seed(read) == []

    def test_min_chain_anchors_filters_singletons(self, reference):
        config = ChainConfig(min_chain_anchors=2)
        provider = ChainedSeedProvider(reference.sequence, config)
        # One k-mer only: a single anchor can never reach two anchors.
        read = reference.sequence[100 : 100 + config.k]
        assert provider.seed(read) == []

    def test_max_chains_caps_emission(self, reference):
        capped = ChainedSeedProvider(
            reference.sequence, ChainConfig(max_chains=1)
        )
        read = reference.sequence[1_000:1_400]
        assert len(capped.seed(read)) <= 1

    def test_repeat_kmers_are_masked(self):
        # A pure repeat genome: every k-mer matches everywhere, which
        # exceeds the hit cap and masks the anchor.
        genome = "ACGTTGCA" * 400
        provider = ChainedSeedProvider(
            genome, ChainConfig(max_hits_per_kmer=4)
        )
        provider.seed(genome[:200])
        assert provider.stats.anchors_masked > 0
        assert provider.stats.anchor_hits == 0

    def test_batch_equals_per_read(self, reference):
        sequences = [
            reference.sequence[0:300],
            reference.sequence[1_500:1_900],
        ]
        batch_provider = ChainedSeedProvider(reference.sequence)
        per_read_provider = ChainedSeedProvider(reference.sequence)
        batched = batch_provider.seed_batch(sequences)
        singles = [per_read_provider.seed(s) for s in sequences]
        assert batched == singles


class TestStats:
    def test_counters_track_one_read(self, reference):
        provider = ChainedSeedProvider(reference.sequence)
        provider.seed(reference.sequence[3_000:3_400])
        stats = provider.stats
        assert stats.reads_seeded == 1
        assert stats.anchors_sampled > 0
        assert stats.anchor_hits > 0
        assert stats.chains_emitted > 0

    def test_merge_is_additive(self):
        left = ChainStats(reads_seeded=1, anchor_hits=5, chains_emitted=2)
        right = ChainStats(reads_seeded=2, anchor_hits=3, chains_emitted=1)
        left.merge(right)
        assert left.reads_seeded == 3
        assert left.anchor_hits == 8
        assert left.chains_emitted == 3


class TestConfig:
    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            ChainConfig(k=0)

    def test_invalid_stride(self):
        with pytest.raises(ValueError, match="stride"):
            ChainConfig(stride=0)

    def test_invalid_min_chain_anchors(self):
        with pytest.raises(ValueError, match="min_chain_anchors"):
            ChainConfig(min_chain_anchors=0)

    def test_index_k_mismatch_rejected(self, reference):
        index = KmerIndex.build(reference.sequence, 11)
        with pytest.raises(ValueError, match="does not match"):
            ChainedSeedProvider(
                reference.sequence, ChainConfig(k=13), index=index
            )
