"""Tests for repro.seeding.smem against the brute-force oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.seeding.cam import IntersectionEngine
from repro.seeding.index import KmerIndex
from repro.seeding.smem import Seed, SeedingMode, SmemConfig, SmemFinder
from repro.seeding.smem_oracle import (
    brute_force_exact_match,
    brute_force_rmem,
    brute_force_smems,
)


def make_finder(segment: str, k: int, **kwargs) -> SmemFinder:
    return SmemFinder(KmerIndex.build(segment, k), SmemConfig(k=k, **kwargs))


class TestSeed:
    def test_end(self):
        assert Seed(3, 10, (0,)).end == 13

    def test_containment(self):
        outer = Seed(2, 10, (0,))
        inner = Seed(4, 5, (0,))
        assert outer.contains(inner)
        assert not inner.contains(outer)


class TestRmem:
    def test_exact_substring_extends_fully(self):
        segment = "TTTTACGTACGTTTTT"
        finder = make_finder(segment, 4)
        seed = finder.rmem("ACGTACGT", 0)
        assert seed.length == 8
        assert seed.hits == (4,)

    def test_stops_at_mismatch(self):
        segment = "AAAACGTTTTTT"
        finder = make_finder(segment, 3)
        # Read diverges from every occurrence after 6 characters.
        seed = finder.rmem("AAACGTGGG", 0)
        assert seed is not None
        assert seed.length == 6

    def test_no_hits_returns_none(self):
        finder = make_finder("AAAAAAA", 3)
        assert finder.rmem("GGGGGG", 0) is None

    def test_pivot_too_close_to_end(self):
        finder = make_finder("ACGTACGT", 4)
        assert finder.rmem("ACGT", 1) is None

    def test_matches_brute_force(self):
        rng = random.Random(8)
        segment = "".join(rng.choice("ACG") for _ in range(150))
        finder = make_finder(segment, 4)
        read = segment[37:70]
        for pivot in range(0, len(read) - 4):
            got = finder.rmem(read, pivot)
            want = brute_force_rmem(segment, read, pivot, 4)
            if want is None:
                assert got is None
            else:
                assert (got.read_offset, got.length, got.hits) == (
                    want.read_offset,
                    want.length,
                    want.hits,
                )

    def test_config_k_must_match_index(self):
        index = KmerIndex.build("ACGTACGT", 4)
        with pytest.raises(ValueError):
            SmemFinder(index, SmemConfig(k=5))


class TestSmems:
    def test_single_exact_read(self):
        segment = "GGGG" + "ACGTACGTACGT" + "CCCC"
        finder = make_finder(segment, 4)
        seeds = finder.find_seeds("ACGTACGTACGT")
        assert len(seeds) == 1
        assert seeds[0].length == 12
        assert seeds[0].hits == (4,)

    def test_contained_rmems_filtered(self):
        """§V: an RMEM inside a previously found SMEM is not reported."""
        rng = random.Random(12)
        segment = "".join(rng.choice("ACGT") for _ in range(300))
        read = segment[100:140]
        finder = make_finder(segment, 5)
        seeds = finder.find_seeds(read)
        ends = [s.end for s in seeds]
        assert ends == sorted(ends)
        assert len(set(ends)) == len(ends)  # strictly increasing => no containment

    def test_split_read_produces_multiple_seeds(self):
        rng = random.Random(3)
        left = "".join(rng.choice("ACGT") for _ in range(60))
        right = "".join(rng.choice("ACGT") for _ in range(60))
        segment = left + right
        # A read straddling a mutation: left half matches, right half too,
        # but not contiguously.
        read = left[-20:] + "T" + right[:20]
        finder = make_finder(segment, 6)
        seeds = finder.find_seeds(read)
        assert len(seeds) >= 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle_property(self, seed_value):
        rng = random.Random(seed_value)
        segment = "".join(rng.choice("AC" if seed_value % 2 else "ACGT") for _ in range(120))
        k = rng.choice([3, 4])
        if rng.random() < 0.7:
            start = rng.randrange(0, 90)
            read = list(segment[start : start + 30])
            for __ in range(rng.randrange(0, 3)):
                read[rng.randrange(len(read))] = rng.choice("ACGT")
            read = "".join(read)
        else:
            read = "".join(rng.choice("ACGT") for _ in range(20))
        finder = make_finder(segment, k)
        got = [(s.read_offset, s.length, s.hits) for s in finder.find_seeds(read)]
        want = [
            (s.read_offset, s.length, s.hits)
            for s in brute_force_smems(segment, read, k)
        ]
        assert got == want


class TestModes:
    def test_naive_mode_reports_every_kmer_hit(self):
        segment = "ACGTACGTACGT"
        finder = make_finder(segment, 4, mode=SeedingMode.NAIVE)
        seeds = finder.find_seeds("ACGTACGT")
        assert all(s.length == 4 for s in seeds)
        total_hits = sum(len(s.hits) for s in seeds)
        assert total_hits > 5  # repetitive segment: many raw hits

    def test_naive_produces_more_hits_than_smem(self):
        """Fig. 16a: SMEM filtering removes orders of magnitude of hits."""
        rng = random.Random(5)
        segment = ("ACGT" * 30) + "".join(rng.choice("ACGT") for _ in range(200))
        read = segment[10:50]
        naive = make_finder(segment, 4, mode=SeedingMode.NAIVE)
        smem = make_finder(segment, 4, mode=SeedingMode.SMEM)
        naive_hits = sum(len(s.hits) for s in naive.find_seeds(read))
        smem_hits = sum(len(s.hits) for s in smem.find_seeds(read))
        assert naive_hits > smem_hits

    def test_fixed_stride_never_longer_than_binary(self):
        """Binary extension pins the exact maximal length (>= fixed stride)."""
        rng = random.Random(6)
        segment = "".join(rng.choice("ACGT") for _ in range(400))
        read = segment[50:90]
        fixed = make_finder(segment, 5, mode=SeedingMode.SMEM_FIXED)
        binary = make_finder(segment, 5, mode=SeedingMode.SMEM)
        fixed_seeds = {s.read_offset: s.length for s in fixed.find_seeds(read)}
        binary_seeds = {s.read_offset: s.length for s in binary.find_seeds(read)}
        for offset, length in fixed_seeds.items():
            if offset in binary_seeds:
                assert binary_seeds[offset] >= length


class TestProbing:
    def test_probe_mode_same_seeds(self):
        rng = random.Random(7)
        segment = "".join(rng.choice("ACGT") for _ in range(300))
        read = segment[40:80]
        plain = make_finder(segment, 4)
        probing = make_finder(segment, 4, probe=True)
        assert [
            (s.read_offset, s.length, s.hits) for s in plain.find_seeds(read)
        ] == [(s.read_offset, s.length, s.hits) for s in probing.find_seeds(read)]

    def test_probe_selects_cheapest_second_kmer(self):
        """Fig. 16b: probing intersects with the k-mer owning fewest hits.

        The stride-k second k-mer lands inside a poly-A run (large hit
        list, the paper's pathological case) while the stride-k/2 one still
        overlaps unique sequence.  Probing must pay only the rare k-mer's
        lookups for the first intersection.
        """
        rng = random.Random(9)
        unique = "".join(rng.choice("CG") for _ in range(100))
        segment = unique + "A" * 24 + unique[::-1]
        # Pivot: last unique 4-mer before the homopolymer; the stride-4
        # k-mer is pure 'AAAA', the stride-2 k-mer is half unique.
        read = segment[96:140]
        plain = make_finder(segment, 4)
        probing = make_finder(segment, 4, probe=True)
        plain_seed = plain.rmem(read, 0)
        probe_seed = probing.rmem(read, 0)
        assert (plain_seed.read_offset, plain_seed.length, plain_seed.hits) == (
            probe_seed.read_offset,
            probe_seed.length,
            probe_seed.hits,
        )
        # Plain's first intersection streams the 'AAAA' hit list (~21
        # positions); probing's streams the rare boundary k-mer's.
        plain_first = plain.engine.stats
        probe_first = probing.engine.stats
        assert probe_first.total_lookups < plain_first.total_lookups


class TestExactMatchFastPath:
    def test_detects_exact_read(self):
        rng = random.Random(10)
        segment = "".join(rng.choice("ACGT") for _ in range(400))
        read = segment[100:160]
        finder = make_finder(segment, 6, exact_match_fast_path=True)
        hits = finder.exact_match_hits(read)
        assert hits == brute_force_exact_match(segment, read)
        assert 100 in hits

    def test_rejects_inexact_read(self):
        rng = random.Random(11)
        segment = "".join(rng.choice("ACGT") for _ in range(400))
        read = list(segment[100:160])
        read[30] = "A" if read[30] != "A" else "C"
        finder = make_finder(segment, 6, exact_match_fast_path=True)
        assert finder.exact_match_hits("".join(read)) is None

    def test_fast_path_counted(self):
        segment = "GGGG" + "ACGTAACCGGTTACGT" + "CCCC"
        finder = make_finder(segment, 4, exact_match_fast_path=True)
        finder.find_seeds("ACGTAACCGGTTACGT")
        assert finder.stats.exact_match_reads == 1

    def test_read_shorter_than_k(self):
        finder = make_finder("ACGTACGT", 4, exact_match_fast_path=True)
        assert finder.exact_match_hits("AC") is None
