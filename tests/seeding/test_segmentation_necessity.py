"""Negative tests: design choices that would break correctness if removed.

Each test disables one mechanism and demonstrates the failure it guards
against — evidence the mechanism is load-bearing, not decorative.
"""

import pytest

from repro.genome.reference import make_reference
from repro.seeding.accelerator import SeedingAccelerator
from repro.seeding.index import IndexTables, KmerIndex
from repro.seeding.smem import SeedingMode, SmemConfig, SmemFinder


class TestSegmentOverlapNecessity:
    def test_boundary_seed_lost_without_overlap(self):
        """Seeds spanning a segment cut are invisible without overlap."""
        reference = make_reference(4_000, seed=91)
        accel = SeedingAccelerator(reference, SmemConfig(k=8), segment_count=2)
        boundary = accel.segments[1].start
        read = reference.sequence[boundary - 30 : boundary + 30]

        # With overlap (the production configuration) the true start exists.
        starts = {
            p - s.read_offset for s in accel.seed_read(read) for p in s.positions
        }
        assert boundary - 30 in starts

        # Rebuild the tables with zero overlap: the spanning seed vanishes
        # as one contiguous match (it splits into two shorter seeds at best).
        views = reference.segments(2, overlap=0)
        lost = True
        for view in views:
            tables = IndexTables(view.index, view.start, KmerIndex.build(view.sequence, 8))
            finder = SmemFinder(tables.index, SmemConfig(k=8))
            for seed in finder.find_seeds(read):
                if seed.read_offset == 0 and seed.length == 60:
                    lost = False
        assert lost, "a 60 bp seed across the cut should not fit in either half"


class TestSmemFilterNecessity:
    def test_naive_mode_floods_extension(self):
        """Without SMEM filtering a repetitive read floods the extender."""
        reference = make_reference(10_000, seed=92)
        read = reference.sequence[500:601]
        naive = SeedingAccelerator(
            reference, SmemConfig(k=12, mode=SeedingMode.NAIVE), segment_count=1
        )
        smem = SeedingAccelerator(
            reference, SmemConfig(k=12, mode=SeedingMode.SMEM), segment_count=1
        )
        naive_seeds = naive.seed_read(read)
        smem_seeds = smem.seed_read(read)
        assert len(naive_seeds) > 5 * len(smem_seeds)
        # Both still contain the truth.
        for seeds in (naive_seeds, smem_seeds):
            starts = {p - s.read_offset for s in seeds for p in s.positions}
            assert 500 in starts


class TestAcceptanceFilterNecessity:
    def test_layer1_rim_states_must_be_excluded(self):
        """Rim layer-1 states hold K+1 edits; counting them breaks the bound.

        AAT vs TTT needs 2 substitutions; with K=1 the machine must reject,
        even though a layer-1 path at the grid rim is physically active.
        """
        from repro.sillax.edit_machine import EditMachine

        assert EditMachine(1).distance("AAT", "TTT") is None
        assert EditMachine(2).distance("AAT", "TTT") == 2
