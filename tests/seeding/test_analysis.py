"""Tests for repro.seeding.analysis (CAM sizing analysis, §V)."""

import pytest

from repro.genome.reference import ReferenceBuilder, RepeatSpec, make_reference
from repro.seeding.analysis import (
    HitDistribution,
    analyze_index,
    pathological_kmers,
    recommend_cam_size,
)
from repro.seeding.index import KmerIndex


class TestHitDistribution:
    def _dist(self):
        index = KmerIndex.build("AAAAACGTACGT", k=3)  # AAA x3 overlapping
        return analyze_index(index)

    def test_counts(self):
        dist = self._dist()
        assert dist.total_positions == 10
        assert dist.max_hits >= 3  # AAA occurs three times

    def test_fraction_within(self):
        dist = self._dist()
        assert dist.fraction_within(dist.max_hits) == 1.0
        assert dist.fraction_within(0) == 0.0

    def test_quantile_monotone(self):
        dist = self._dist()
        assert dist.quantile(0.1) <= dist.quantile(0.9)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            self._dist().quantile(1.5)

    def test_empty_index(self):
        dist = analyze_index(KmerIndex.build("AC", k=3))
        assert dist.distinct_kmers == 0
        assert dist.fraction_within(1) == 1.0
        assert dist.quantile(0.5) == 0


class TestCamAdequacy:
    def test_random_genome_fits_small_cam(self):
        """On a mostly-unique genome nearly every k-mer has few hits."""
        reference = make_reference(30_000, seed=3)
        dist = analyze_index(KmerIndex.build(reference.sequence, 12))
        assert dist.cam_adequacy(512) > 0.999
        assert dist.cam_adequacy(8) > 0.95

    def test_repetitive_genome_needs_larger_cam(self):
        builder = ReferenceBuilder(
            length=30_000,
            seed=4,
            repeats=RepeatSpec(
                tandem_repeat_count=10,
                tandem_unit_length=2,
                tandem_copies=200,
                dispersed_repeat_count=0,
            ),
        )
        repetitive = analyze_index(KmerIndex.build(builder.build().sequence, 12))
        plain = analyze_index(
            KmerIndex.build(make_reference(30_000, seed=4).sequence, 12)
        )
        assert repetitive.max_hits > plain.max_hits

    def test_recommendation_is_power_of_two(self):
        reference = make_reference(10_000, seed=5)
        dist = analyze_index(KmerIndex.build(reference.sequence, 12))
        size = recommend_cam_size(dist)
        assert size & (size - 1) == 0
        assert dist.fraction_within(size) >= 0.99


class TestPathologicalKmers:
    def test_poly_run_tops_the_list(self):
        """§VIII-B: AA...A-style k-mers have pathological hit counts."""
        sequence = "A" * 200 + make_reference(5_000, seed=6).sequence
        index = KmerIndex.build(sequence, 12)
        worst = pathological_kmers(index, top=1)
        assert worst[0][0] == "A" * 12
        assert worst[0][1] >= 150

    def test_top_list_sorted(self):
        index = KmerIndex.build(make_reference(5_000, seed=7).sequence, 8)
        worst = pathological_kmers(index, top=5)
        counts = [count for __, count in worst]
        assert counts == sorted(counts, reverse=True)
