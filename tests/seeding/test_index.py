"""Tests for repro.seeding.index."""

import pytest

from repro.genome.reference import make_reference
from repro.seeding.index import IndexTables, KmerIndex, build_segment_tables, kmer_code


class TestKmerCode:
    def test_two_bit_packing(self):
        assert kmer_code("A") == 0
        assert kmer_code("T") == 3
        assert kmer_code("AC") == 1
        assert kmer_code("CA") == 4

    def test_distinct_codes(self):
        codes = {kmer_code(a + b + c) for a in "ACGT" for b in "ACGT" for c in "ACGT"}
        assert len(codes) == 64

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            kmer_code("AN")


class TestKmerIndex:
    def test_hits_sorted_positions(self):
        index = KmerIndex.build("ACGACGACG", k=3)
        assert list(index.hits("ACG")) == [0, 3, 6]

    def test_absent_kmer(self):
        index = KmerIndex.build("AAAA", k=2)
        assert list(index.hits("GT")) == []

    def test_every_kmer_indexed(self):
        sequence = "ACGTACCGTA"
        index = KmerIndex.build(sequence, k=4)
        for start in range(len(sequence) - 3):
            assert start in index.hits(sequence[start : start + 4])

    def test_total_positions(self):
        index = KmerIndex.build("ACGTACGT", k=3)
        assert index.total_positions == 6

    def test_wrong_query_length_rejected(self):
        index = KmerIndex.build("ACGT", k=2)
        with pytest.raises(ValueError):
            index.hits("ACG")

    def test_sequence_shorter_than_k(self):
        index = KmerIndex.build("AC", k=3)
        assert index.total_positions == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerIndex.build("ACGT", k=0)

    def test_contains(self):
        index = KmerIndex.build("ACGT", k=2)
        assert index.contains("CG")
        assert not index.contains("GA")

    def test_hit_histogram(self):
        index = KmerIndex.build("AAAAA", k=2)  # "AA" occurs 4 times
        assert index.hit_histogram() == {4: 1}

    def test_table_sizes(self):
        index = KmerIndex.build("ACGT" * 100, k=12)
        assert index.position_table_bytes() == index.total_positions * 4
        assert index.index_table_bytes() == (4**12) * 6

    def test_rolling_build_matches_naive(self):
        sequence = make_reference(2_000, seed=3).sequence
        index = KmerIndex.build(sequence, k=5)
        for start in (0, 17, 500, 1994):
            kmer = sequence[start : start + 5]
            if len(kmer) == 5:
                assert start in index.hits(kmer)


class TestSegmentTables:
    def test_build_per_segment(self):
        ref = make_reference(4_000, seed=9)
        tables = build_segment_tables(ref.segments(4), k=6)
        assert len(tables) == 4
        assert tables[2].segment_start == ref.segments(4)[2].start
        assert all(t.sram_bytes > 0 for t in tables)

    def test_segment_hits_are_local(self):
        ref = make_reference(3_000, seed=2)
        views = ref.segments(3)
        tables = build_segment_tables(views, k=8)
        for view, table in zip(views, tables):
            kmer = view.sequence[:8]
            assert 0 in table.index.hits(kmer)
