"""Tests for the repro-genax command-line interface."""

import pytest

from repro.cli import main
from repro.genome.fasta import read_fasta, read_fastq


@pytest.fixture()
def simulated(tmp_path):
    ref = tmp_path / "ref.fa"
    reads = tmp_path / "reads.fq"
    code = main(
        [
            "simulate",
            "--length", "8000",
            "--reads", "8",
            "--seed", "5",
            "--out-reference", str(ref),
            "--out-reads", str(reads),
        ]
    )
    assert code == 0
    return ref, reads


class TestSimulate:
    def test_outputs_created(self, simulated):
        ref, reads = simulated
        assert len(read_fasta(ref)[0][1]) == 8000
        assert len(read_fastq(reads)) == 8

    def test_ground_truth_in_names(self, simulated):
        __, reads = simulated
        name = read_fastq(reads)[0].name
        parts = name.split("|")
        assert len(parts) == 3
        assert parts[2] in "+-"
        assert int(parts[1]) >= 0

    def test_deterministic(self, tmp_path):
        out = []
        for run in ("a", "b"):
            ref = tmp_path / f"ref_{run}.fa"
            reads = tmp_path / f"reads_{run}.fq"
            main(["simulate", "--length", "2000", "--reads", "3", "--seed", "9",
                  "--out-reference", str(ref), "--out-reads", str(reads)])
            out.append(read_fasta(ref)[0][1])
        assert out[0] == out[1]


class TestAlign:
    @pytest.mark.parametrize("pipeline", ["genax", "bwamem"])
    def test_align_pipelines(self, simulated, tmp_path, pipeline, capsys):
        ref, reads = simulated
        out = tmp_path / f"{pipeline}.sam"
        code = main(
            ["align", str(ref), str(reads), str(out),
             "--pipeline", pipeline, "--edit-bound", "10", "--segments", "2"]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("@HD")
        assert "mapped" in capsys.readouterr().out
        # Mapped positions should match the encoded ground truth.
        hits = 0
        for line in text.splitlines():
            if line.startswith("@"):
                continue
            fields = line.split("\t")
            true_pos = int(fields[0].split("|")[1])
            if fields[3] != "0" and abs(int(fields[3]) - 1 - true_pos) <= 10:
                hits += 1
        assert hits >= 6  # most of the 8 reads land on the truth


class TestAlignParallel:
    def test_jobs_prefilter_cache_matches_serial(self, simulated, tmp_path, capsys):
        """`--jobs/--prefilter/--cache-dir` produce the same SAM as serial."""
        ref, reads = simulated
        serial_out = tmp_path / "serial.sam"
        parallel_out = tmp_path / "parallel.sam"
        base = ["align", str(ref), str(reads),
                "--edit-bound", "10", "--segments", "2"]
        assert main(base + [str(serial_out)]) == 0
        code = main(
            base
            + [str(parallel_out), "--jobs", "2", "--prefilter",
               "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        assert "prefilter" in out
        serial_body = [l for l in serial_out.read_text().splitlines()
                       if not l.startswith("@")]
        parallel_body = [l for l in parallel_out.read_text().splitlines()
                         if not l.startswith("@")]
        assert parallel_body == serial_body
        # The cache directory now holds a persisted index entry.
        assert list((tmp_path / "cache").glob("genax-index-*.tables"))

    def test_bwamem_jobs_matches_serial(self, simulated, tmp_path, capsys):
        """Satellite: `--pipeline bwamem --jobs 4` shards through the same
        parallel driver — no warning, identical SAM, uniform summary."""
        ref, reads = simulated
        serial_out = tmp_path / "bwamem_serial.sam"
        parallel_out = tmp_path / "bwamem_parallel.sam"
        base = ["align", str(ref), str(reads),
                "--pipeline", "bwamem", "--edit-bound", "10"]
        assert main(base + [str(serial_out)]) == 0
        assert main(base + [str(parallel_out), "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "only apply" not in captured.err  # no jobs-ignored warning
        assert "bwamem: mapped" in captured.out
        assert "4 job(s)" in captured.out
        assert parallel_out.read_text() == serial_out.read_text()

    def test_bwamem_prefilter_flag_warns(self, simulated, tmp_path, capsys):
        ref, reads = simulated
        out = tmp_path / "warn.sam"
        assert main(["align", str(ref), str(reads), str(out),
                     "--pipeline", "bwamem", "--edit-bound", "10",
                     "--prefilter"]) == 0
        assert "only apply to the genax pipeline" in capsys.readouterr().err

    def test_invalid_jobs_rejected(self, simulated, tmp_path):
        ref, reads = simulated
        with pytest.raises(SystemExit):
            main(["align", str(ref), str(reads), str(tmp_path / "x.sam"),
                  "--jobs", "0"])


class TestAlignTelemetry:
    """The observability flags: --profile, --trace-out, --metrics-out."""

    def test_no_flags_writes_no_artifacts(self, simulated, tmp_path):
        ref, reads = simulated
        out = tmp_path / "plain.sam"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2"]) == 0
        assert not (tmp_path / "plain.sam.manifest.json").exists()

    def test_profile_prints_stage_table(self, simulated, tmp_path, capsys):
        ref, reads = simulated
        out = tmp_path / "profiled.sam"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2",
                     "--profile"]) == 0
        err = capsys.readouterr().err
        assert "pipeline profile" in err
        for stage in ("seed", "filter", "extend", "select"):
            assert stage in err
        assert "wall time:" in err
        assert "work: reads=8" in err

    def test_trace_out_loads_as_chrome_trace(self, simulated, tmp_path):
        import json

        ref, reads = simulated
        out = tmp_path / "traced.sam"
        trace = tmp_path / "trace.json"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2",
                     "--trace-out", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert {"align_run", "seed", "read", "select"} <= names
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0

    def test_metrics_out_json_and_manifest(self, simulated, tmp_path):
        import json

        ref, reads = simulated
        out = tmp_path / "metered.sam"
        metrics = tmp_path / "metrics.json"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2",
                     "--metrics-out", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        counters = payload["metrics"]["counters"]
        assert counters["pipeline_reads_total"]["value"] == 8
        # Backend hardware counters are published alongside stage metrics.
        assert counters["genax_reads_total"]["value"] == 8
        manifest = json.loads(
            (tmp_path / "metered.sam.manifest.json").read_text()
        )
        assert manifest["backend"] == "genax"
        assert manifest["reads_total"] == 8
        assert manifest["command"][0] == "repro-genax"
        assert "--metrics-out" in manifest["command"]

    def test_metrics_out_prom_format(self, simulated, tmp_path):
        ref, reads = simulated
        out = tmp_path / "prom.sam"
        metrics = tmp_path / "metrics.prom"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2",
                     "--metrics-out", str(metrics)]) == 0
        text = metrics.read_text()
        assert "# TYPE pipeline_reads_total counter" in text
        assert 'pipeline_stage_seconds_seed_bucket{le="+Inf"}' in text

    def test_profile_jobs4_reconciles_with_merged_registry(
        self, simulated, tmp_path, capsys
    ):
        """Acceptance: the --jobs 4 profile table and the exported merged
        registry tell one story, and it matches the serial run's work."""
        import json

        ref, reads = simulated
        serial_metrics = tmp_path / "serial.json"
        parallel_metrics = tmp_path / "parallel.json"
        base = ["align", str(ref), str(reads),
                "--edit-bound", "10", "--segments", "2"]
        assert main(base + [str(tmp_path / "s.sam"),
                            "--metrics-out", str(serial_metrics)]) == 0
        capsys.readouterr()
        assert main(base + [str(tmp_path / "p.sam"), "--jobs", "4",
                            "--profile",
                            "--metrics-out", str(parallel_metrics)]) == 0
        err = capsys.readouterr().err
        serial = json.loads(serial_metrics.read_text())["metrics"]
        parallel = json.loads(parallel_metrics.read_text())["metrics"]
        for name in ("pipeline_reads_total", "pipeline_seeds_total",
                     "pipeline_candidates_total", "pipeline_extensions_total"):
            assert (parallel["counters"][name]["value"]
                    == serial["counters"][name]["value"]), name
        # The printed work line agrees with the merged registry.
        reads_total = parallel["counters"]["pipeline_reads_total"]["value"]
        assert f"work: reads={reads_total}" in err
        # The printed stage calls agree with the merged stage histograms.
        extend_calls = parallel["histograms"][
            "pipeline_stage_seconds_extend"
        ]["count"]
        extend_row = next(
            line for line in err.splitlines() if line.startswith("extend")
        )
        assert str(extend_calls) in extend_row.split()
        # SAM output is still bit-identical to the serial run.
        assert (tmp_path / "p.sam").read_text() == (
            tmp_path / "s.sam"
        ).read_text()


class TestDistance:
    def test_within_k(self, capsys):
        assert main(["distance", "GATTACA", "GATTTACA"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_beyond_k(self, capsys):
        assert main(["distance", "AAAA", "TTTT", "--k", "2"]) == 1
        assert capsys.readouterr().out.strip() == "> 2"

    def test_case_insensitive(self, capsys):
        assert main(["distance", "acgt", "ACGT"]) == 0
        assert capsys.readouterr().out.strip() == "0"


class TestEvaluate:
    def test_evaluate_prints_summary(self, capsys):
        assert main(["evaluate"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Fig. 15a" in out


class TestEndToEnd:
    def test_simulate_align_parse_roundtrip(self, simulated, tmp_path):
        """CLI workflow: simulate -> align -> parse the SAM back."""
        from repro.pipeline.sam import read_sam

        ref, reads = simulated
        out = tmp_path / "roundtrip.sam"
        assert main(["align", str(ref), str(reads), str(out),
                     "--edit-bound", "10", "--segments", "2"]) == 0
        records = read_sam(out)
        assert len(records) == 8
        accurate = 0
        for record in records:
            true_pos = int(record.read_name.split("|")[1])
            if not record.is_unmapped and abs(record.position - true_pos) <= 10:
                accurate += 1
        assert accurate >= 6


class TestSeeds:
    def test_seeds_printed(self, simulated, capsys):
        ref, __ = simulated
        sequence = read_fasta(ref)[0][1]
        read = sequence[100:160]
        assert main(["seeds", str(ref), read, "--kmer", "12"]) == 0
        out = capsys.readouterr().out
        assert "offset=0" in out
        assert "length=60" in out

    def test_no_seeds(self, simulated, capsys):
        ref, __ = simulated
        assert main(["seeds", str(ref), "N" * 0 + "A" * 12, "--kmer", "12"]) == 0
        # Poly-A may or may not hit; just require the command to run and
        # print something sensible.
        assert capsys.readouterr().out.strip()


class TestFilterCascadeCli:
    """The --filters cascade spec and the deprecated --prefilter bridge."""

    BASE = ["--edit-bound", "10", "--segments", "2"]

    def test_prefilter_warns_and_matches_filters_myers(
        self, simulated, tmp_path, capsys
    ):
        ref, reads = simulated
        legacy_out = tmp_path / "legacy.sam"
        modern_out = tmp_path / "modern.sam"
        with pytest.warns(DeprecationWarning, match="--filters myers"):
            assert main(["align", str(ref), str(reads), str(legacy_out),
                         *self.BASE, "--prefilter"]) == 0
        legacy_summary = capsys.readouterr().out
        assert "prefilter rejected" in legacy_summary
        assert main(["align", str(ref), str(reads), str(modern_out),
                     *self.BASE, "--filters", "myers"]) == 0
        modern_summary = capsys.readouterr().out
        assert "filters rejected" in modern_summary
        assert legacy_out.read_text() == modern_out.read_text()
        # Same rejection tally, different spelling of the same cascade.
        assert legacy_summary.rsplit("rejected", 1)[1].split()[0] == (
            modern_summary.rsplit("rejected", 1)[1].split()[0]
        )

    @pytest.mark.parametrize("pipeline", ["genax", "bwamem", "bitvector"])
    def test_full_cascade_matches_unfiltered(
        self, simulated, tmp_path, pipeline, capsys
    ):
        ref, reads = simulated
        plain_out = tmp_path / "plain.sam"
        cascade_out = tmp_path / "cascade.sam"
        assert main(["align", str(ref), str(reads), str(plain_out),
                     "--pipeline", pipeline, *self.BASE]) == 0
        capsys.readouterr()
        assert main(["align", str(ref), str(reads), str(cascade_out),
                     "--pipeline", pipeline, *self.BASE,
                     "--filters", "shouldered,sneakysnake,myers"]) == 0
        assert "filters rejected" in capsys.readouterr().out
        assert cascade_out.read_text() == plain_out.read_text()

    def test_filters_none_is_explicitly_no_cascade(
        self, simulated, tmp_path, capsys
    ):
        ref, reads = simulated
        out = tmp_path / "none.sam"
        assert main(["align", str(ref), str(reads), str(out),
                     *self.BASE, "--filters", "none"]) == 0
        assert "filters rejected" not in capsys.readouterr().out

    def test_unknown_filter_name_rejected(self, simulated, tmp_path):
        ref, reads = simulated
        out = tmp_path / "bad.sam"
        with pytest.raises(SystemExit, match="--filters"):
            main(["align", str(ref), str(reads), str(out),
                  *self.BASE, "--filters", "shouldered,bogus"])

    def test_repeated_filter_name_rejected(self, simulated, tmp_path):
        ref, reads = simulated
        out = tmp_path / "dup.sam"
        with pytest.raises(SystemExit, match="repeated"):
            main(["align", str(ref), str(reads), str(out),
                  *self.BASE, "--filters", "myers,myers"])


class TestScenarioProfiles:
    """The scenario surface: simulate --profile, align --paired/longread."""

    @pytest.mark.parametrize("profile", ["nanopore", "paired_end", "sv"])
    def test_simulate_profiles(self, tmp_path, profile, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        code = main(
            ["simulate", "--length", "2000", "--reads", "2", "--seed", "5",
             "--profile", profile,
             "--out-reference", str(ref), "--out-reads", str(reads)]
        )
        assert code == 0
        assert profile in capsys.readouterr().out
        records = read_fastq(reads)
        assert len(records) == (4 if profile == "paired_end" else 2)
        for record in records:
            assert len(record.quality) == len(record.sequence)

    def test_simulate_profile_deterministic(self, tmp_path):
        sequences = []
        for run in ("a", "b"):
            ref = tmp_path / f"ref_{run}.fa"
            reads = tmp_path / f"reads_{run}.fq"
            main(["simulate", "--length", "2000", "--reads", "2", "--seed",
                  "9", "--profile", "nanopore",
                  "--out-reference", str(ref), "--out-reads", str(reads)])
            sequences.append([r.sequence for r in read_fastq(reads)])
        assert sequences[0] == sequences[1]

    def test_align_paired_reports_pair_summary(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main(["simulate", "--length", "4000", "--reads", "3", "--seed", "5",
              "--profile", "paired_end",
              "--out-reference", str(ref), "--out-reads", str(reads)])
        capsys.readouterr()
        out = tmp_path / "out.sam"
        code = main(
            ["align", str(ref), str(reads), str(out), "--paired",
             "--insert-mean", "350", "--insert-slack", "140",
             "--edit-bound", "10", "--segments", "2"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "pairs proper" in printed
        assert "mates rescued" in printed

    def test_align_paired_rejects_parallel_jobs(self, tmp_path):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main(["simulate", "--length", "2000", "--reads", "1", "--seed", "5",
              "--profile", "paired_end",
              "--out-reference", str(ref), "--out-reads", str(reads)])
        with pytest.raises(SystemExit, match="--paired requires --jobs 1"):
            main(["align", str(ref), str(reads), str(tmp_path / "o.sam"),
                  "--paired", "--jobs", "2"])

    def test_align_paired_rejects_odd_read_count(self, simulated, tmp_path):
        # The plain simulate fixture wrote 8 single-end reads; truncate
        # the FASTQ to 3 records to break mate interleaving.
        ref, reads = simulated
        records = read_fastq(reads)[:3]
        from repro.genome.fasta import write_fastq

        odd = tmp_path / "odd.fq"
        write_fastq(odd, records)
        with pytest.raises(SystemExit, match="even read count"):
            main(["align", str(ref), str(odd), str(tmp_path / "o.sam"),
                  "--paired"])

    def test_align_longread_pipeline(self, tmp_path, capsys):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        main(["simulate", "--length", "2000", "--reads", "2", "--seed", "5",
              "--profile", "nanopore",
              "--out-reference", str(ref), "--out-reads", str(reads)])
        capsys.readouterr()
        out = tmp_path / "out.sam"
        code = main(
            ["align", str(ref), str(reads), str(out),
             "--pipeline", "longread", "--kmer", "13"]
        )
        assert code == 0
        assert "longread" in capsys.readouterr().out
        assert out.exists()
