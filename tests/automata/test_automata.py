"""Tests for repro.automata (STE substrate + Levenshtein compilation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.edit_distance import levenshtein
from repro.automata.levenshtein_nfa import compile_levenshtein_nfa
from repro.automata.nfa import HomogeneousNFA, SymbolClass
from repro.automata.processor import AutomataProcessor

dna = st.text(alphabet="ACGT", max_size=9)


class TestSymbolClass:
    def test_exactly(self):
        sc = SymbolClass.exactly("A", "C")
        assert sc.matches("A") and sc.matches("C")
        assert not sc.matches("G")

    def test_anything(self):
        assert SymbolClass.anything().matches("X")

    def test_anything_but(self):
        sc = SymbolClass.anything_but("A")
        assert not sc.matches("A")
        assert sc.matches("T")


class TestHomogeneousNFA:
    def _simple(self):
        nfa = HomogeneousNFA()
        nfa.add_state("a", SymbolClass.exactly("A"), start=True)
        nfa.add_state("b", SymbolClass.exactly("C"), accept=True)
        nfa.add_edge("a", "b")
        return nfa

    def test_accepts_exact_sequence(self):
        assert self._simple().run("AC")

    def test_rejects_wrong_symbol(self):
        assert not self._simple().run("AG")

    def test_rejects_short_input(self):
        assert not self._simple().run("A")

    def test_rejects_empty(self):
        assert not self._simple().run("")

    def test_duplicate_state_rejected(self):
        nfa = self._simple()
        with pytest.raises(ValueError):
            nfa.add_state("a", SymbolClass.anything())

    def test_edge_to_unknown_state_rejected(self):
        nfa = self._simple()
        with pytest.raises(ValueError):
            nfa.add_edge("a", "zzz")

    def test_counts(self):
        nfa = self._simple()
        assert nfa.state_count == 2
        assert nfa.edge_count == 1
        assert nfa.max_fanout() == 1

    def test_mark_start(self):
        nfa = self._simple()
        nfa.mark_start("b")
        assert "b" in nfa.start_states()


class TestCompiledLevenshtein:
    def test_exact_match(self):
        compiled = compile_levenshtein_nfa("ACGT", 0)
        assert compiled.accepts("ACGT")
        assert not compiled.accepts("ACGA")

    def test_substitution(self):
        compiled = compile_levenshtein_nfa("ACGT", 1)
        assert compiled.accepts("AGGT")

    def test_insertion_and_deletion(self):
        compiled = compile_levenshtein_nfa("ACGT", 1)
        assert compiled.accepts("ACGGT")
        assert compiled.accepts("AGT")

    def test_trailing_deletion_acceptance(self):
        compiled = compile_levenshtein_nfa("ACGT", 2)
        assert compiled.accepts("AC")  # delete the 'GT' tail

    def test_empty_text(self):
        assert compile_levenshtein_nfa("AC", 2).accepts("")
        assert not compile_levenshtein_nfa("ACG", 2).accepts("")

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            compile_levenshtein_nfa("A", -1)

    def test_ste_count_scales_with_pattern_length(self):
        """The §II complaint: O(K*N) STEs per pattern."""
        short = compile_levenshtein_nfa("ACGT" * 2, 2).nfa.state_count
        long = compile_levenshtein_nfa("ACGT" * 8, 2).nfa.state_count
        assert long > 3 * short

    def test_fanout_grows_with_k(self):
        small = compile_levenshtein_nfa("ACGTACGT", 1).nfa.max_fanout()
        large = compile_levenshtein_nfa("ACGTACGT", 4).nfa.max_fanout()
        assert large > small

    @given(dna, dna, st.integers(0, 3))
    @settings(max_examples=80, deadline=None)
    def test_accepts_exactly_within_k(self, pattern, text, k):
        compiled = compile_levenshtein_nfa(pattern, k)
        assert compiled.accepts(text) == (levenshtein(pattern, text) <= k)


class TestProcessor:
    def test_load_and_run(self):
        processor = AutomataProcessor()
        processor.load(compile_levenshtein_nfa("ACGT", 1).nfa)
        assert processor.run("ACGA")
        assert not processor.run("TTTT")

    def test_run_without_load(self):
        with pytest.raises(RuntimeError):
            AutomataProcessor().run("A")

    def test_capacity_enforced(self):
        processor = AutomataProcessor(capacity=5)
        with pytest.raises(ValueError):
            processor.load(compile_levenshtein_nfa("ACGTACGT", 2).nfa)

    def test_reconfiguration_cost_charged_per_pattern(self):
        """The §II context-switch argument: per-read reprogramming cost."""
        processor = AutomataProcessor()
        patterns = ["ACGTACGTAC", "TTGCAACGTT", "GGGTACCACG"]
        for pattern in patterns:
            processor.load(compile_levenshtein_nfa(pattern, 2).nfa)
            processor.run("ACGTACCTAC")
        stats = processor.stats
        assert stats.reconfigurations == 3
        assert stats.total_config_writes > 3 * 100
        # Config writes dwarf the streaming cycles for short reads.
        assert stats.total_config_writes > stats.cycles

    def test_activation_accounting(self):
        processor = AutomataProcessor()
        processor.load(compile_levenshtein_nfa("ACGT", 1).nfa)
        processor.run("ACGT")
        assert processor.stats.ste_activations > 0
        assert processor.stats.cycles == 4
