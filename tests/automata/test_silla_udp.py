"""Tests for repro.automata.silla_udp (the §VIII-C UDP mapping)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.silla_udp import (
    ComparisonWord,
    UdpSillaMachine,
    comparison_word_stream,
)
from repro.sillax.edit_machine import EditMachine

dna = st.text(alphabet="ACGT", max_size=12)


class TestComparisonWordStream:
    def test_word_width(self):
        words = list(comparison_word_stream("ACGT", "ACGT", k=3))
        # 2K+1 comparison bits plus the two exhaustion bits.
        assert words[0].width_bits == 2 * 3 + 1 + 2

    def test_exhaustion_bits(self):
        words = list(comparison_word_stream("AC", "ACGT", k=2))
        assert not words[0].r_done and not words[0].q_done
        assert words[2].r_done and not words[2].q_done  # R ends first
        assert words[4].q_done

    def test_matching_prefix_bits(self):
        words = list(comparison_word_stream("ACGT", "ACGT", k=1))
        # With no edits, the (0,0) comparison matches every in-range cycle.
        assert words[0].row[0] and words[3].row[0]
        assert not words[4].row[0]  # past the end


class TestUdpSillaMachine:
    def test_identity(self):
        assert UdpSillaMachine(2).distance("GATTACA", "GATTACA") == 0

    def test_mixed_edits(self):
        assert UdpSillaMachine(2).distance("AXBCD".replace("X", "T"), "YABCD".replace("Y", "G")) == 2

    def test_beyond_k(self):
        assert UdpSillaMachine(1).distance("AAAA", "TTTT") is None

    def test_empty(self):
        assert UdpSillaMachine(0).distance("", "") == 0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            UdpSillaMachine(-1)

    def test_wrong_word_width_rejected(self):
        machine = UdpSillaMachine(3)
        words = comparison_word_stream("AC", "AC", k=2)  # width mismatch
        with pytest.raises(ValueError):
            machine.run(words)

    def test_machine_never_touches_strings(self):
        """The mapping's point: the back-end consumes only words."""
        machine = UdpSillaMachine(2)
        words = list(comparison_word_stream("ACGTA", "ACCTA", 2))
        assert machine.run(iter(words)) == 1  # no strings in sight

    @given(dna, dna, st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_matches_edit_machine(self, a, b, k):
        assert UdpSillaMachine(k).distance(a, b) == EditMachine(k).distance(a, b)
