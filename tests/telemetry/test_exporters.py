"""Exporter formats: Prometheus text, metrics JSON, traces, profile table."""

import json

from repro.telemetry.clock import ManualClock
from repro.telemetry.exporters import (
    METRICS_SCHEMA_VERSION,
    PROFILE_STAGES,
    lint_prometheus_text,
    metrics_json,
    prometheus_text,
    render_profile,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.runtime import SECONDS_BUCKETS, STAGES, PipelineTelemetry
from repro.telemetry.tracer import Tracer


def populated_registry():
    registry = MetricRegistry()
    registry.counter("reads_total", "reads processed").inc(7)
    registry.gauge("peak_depth").set(3.5)
    hist = registry.histogram("latency_seconds", (0.1, 1.0), "span latency")
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestPrometheusText:
    def test_empty_registry_exports_empty_text(self):
        assert prometheus_text(MetricRegistry()) == ""

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(populated_registry())
        assert "# HELP reads_total reads processed" in text
        assert "# TYPE reads_total counter" in text
        assert "reads_total 7" in text
        assert "# TYPE peak_depth gauge" in text
        assert "peak_depth 3.5" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = prometheus_text(populated_registry()).splitlines()
        bucket_lines = [l for l in lines if l.startswith("latency_seconds")]
        assert bucket_lines == [
            'latency_seconds_bucket{le="0.1"} 1',
            'latency_seconds_bucket{le="1"} 2',
            'latency_seconds_bucket{le="+Inf"} 3',
            "latency_seconds_sum 2.55",
            "latency_seconds_count 3",
        ]

    def test_help_line_omitted_without_help_text(self):
        registry = MetricRegistry()
        registry.counter("bare").inc()
        text = prometheus_text(registry)
        assert "# HELP" not in text
        assert "# TYPE bare counter" in text


class TestPrometheusLint:
    def test_exporter_output_is_lint_clean(self):
        assert lint_prometheus_text(prometheus_text(populated_registry())) == []

    def test_empty_output_is_lint_clean(self):
        assert lint_prometheus_text("") == []

    def test_missing_trailing_newline_flagged(self):
        problems = lint_prometheus_text("reads_total 7")
        assert any("newline" in p for p in problems)

    def test_bad_metric_name_flagged(self):
        problems = lint_prometheus_text("2reads 7\n")
        assert any("unparseable sample" in p for p in problems)

    def test_unknown_type_kind_flagged(self):
        problems = lint_prometheus_text("# TYPE reads_total meter\n")
        assert any("unknown TYPE" in p for p in problems)

    def test_duplicate_type_flagged(self):
        text = (
            "# TYPE reads_total counter\n"
            "# TYPE reads_total counter\n"
            "reads_total 7\n"
        )
        assert any("duplicate" in p for p in lint_prometheus_text(text))

    def test_metadata_after_sample_flagged(self):
        text = "reads_total 7\n# HELP reads_total late help\n"
        problems = lint_prometheus_text(text)
        assert any("after its first sample" in p for p in problems)

    def test_unparseable_value_flagged(self):
        text = "# TYPE reads_total counter\nreads_total seven\n"
        assert any("unparseable value" in p
                   for p in lint_prometheus_text(text))

    def test_unescaped_label_quote_flagged(self):
        text = 'latency_bucket{le="a"b"} 1\n'
        assert any("malformed labels" in p
                   for p in lint_prometheus_text(text))

    def test_escaped_label_value_accepted(self):
        text = (
            "# TYPE hits counter\n"
            'hits{path="C:\\\\logs\\"daily\\""} 3\n'
        )
        assert lint_prometheus_text(text) == []

    def test_bucket_without_le_label_flagged(self):
        text = (
            "# TYPE latency_seconds histogram\n"
            "latency_seconds_bucket 1\n"
            "latency_seconds_sum 1\n"
            "latency_seconds_count 1\n"
        )
        assert any('le="..."' in p for p in lint_prometheus_text(text))

    def test_bucket_series_missing_inf_flagged(self):
        text = (
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            "latency_seconds_sum 0.05\n"
            "latency_seconds_count 1\n"
        )
        problems = lint_prometheus_text(text)
        assert any("+Inf" in p for p in problems)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 5\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 1\n"
            "latency_seconds_count 3\n"
        )
        problems = lint_prometheus_text(text)
        assert any("cumulative" in p for p in problems)

    def test_bucket_missing_sum_and_count_flagged(self):
        text = (
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="+Inf"} 3\n'
        )
        problems = lint_prometheus_text(text)
        assert any("_sum sample missing" in p for p in problems)
        assert any("_count sample missing" in p for p in problems)

    def test_untyped_bucket_series_flagged(self):
        text = (
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 1\n"
            "latency_seconds_count 3\n"
        )
        problems = lint_prometheus_text(text)
        assert any("without # TYPE" in p for p in problems)


class TestHistogramBucketEdges:
    """Golden bucket placement at exact boundary values.

    Prometheus ``le`` is inclusive: an observation exactly on a bucket
    bound must land in that bucket, not the next one.
    """

    def make_hist(self):
        registry = MetricRegistry()
        hist = registry.histogram("edge_seconds", (0.1, 1.0, 10.0))
        return registry, hist

    def test_observation_on_bound_lands_in_that_bucket(self):
        registry, hist = self.make_hist()
        hist.observe(0.1)
        lines = prometheus_text(registry).splitlines()
        assert 'edge_seconds_bucket{le="0.1"} 1' in lines
        assert 'edge_seconds_bucket{le="1"} 1' in lines

    def test_observation_just_above_bound_lands_in_next_bucket(self):
        registry, hist = self.make_hist()
        hist.observe(0.10000001)
        lines = prometheus_text(registry).splitlines()
        assert 'edge_seconds_bucket{le="0.1"} 0' in lines
        assert 'edge_seconds_bucket{le="1"} 1' in lines

    def test_observation_beyond_last_bound_only_in_inf(self):
        registry, hist = self.make_hist()
        hist.observe(99.0)
        lines = prometheus_text(registry).splitlines()
        assert 'edge_seconds_bucket{le="10"} 0' in lines
        assert 'edge_seconds_bucket{le="+Inf"} 1' in lines

    def test_edge_golden_text(self):
        registry, hist = self.make_hist()
        for value in (0.1, 0.1, 1.0, 10.0, 11.0):
            hist.observe(value)
        got = [
            line
            for line in prometheus_text(registry).splitlines()
            if line.startswith("edge_seconds")
        ]
        assert got == [
            'edge_seconds_bucket{le="0.1"} 2',
            'edge_seconds_bucket{le="1"} 3',
            'edge_seconds_bucket{le="10"} 4',
            'edge_seconds_bucket{le="+Inf"} 5',
            "edge_seconds_sum 22.2",
            "edge_seconds_count 5",
        ]
        assert lint_prometheus_text(prometheus_text(registry)) == []


class TestMetricsJson:
    def test_empty_registry_export(self):
        payload = metrics_json(MetricRegistry())
        assert payload == {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_payload_is_json_serialisable(self):
        payload = metrics_json(populated_registry())
        restored = json.loads(json.dumps(payload))
        assert restored["metrics"]["counters"]["reads_total"]["value"] == 7


class TestWriters:
    def test_prom_suffix_selects_text_format(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(path, populated_registry())
        assert "# TYPE reads_total counter" in path.read_text()

    def test_json_default_with_parent_creation(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "metrics.json"
        write_metrics(path, populated_registry())
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION

    def test_write_chrome_trace(self, tmp_path):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        tracer.begin("seed")
        clock.advance(0.001)
        tracer.end()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        trace = json.loads(path.read_text())
        assert [e["ph"] for e in trace["traceEvents"]] == ["B", "E"]


class TestRenderProfile:
    def test_stage_constant_matches_runtime(self):
        # The profile table and the runtime's histograms must agree on
        # the stage taxonomy, or stages silently vanish from the table.
        assert PROFILE_STAGES == STAGES

    def test_empty_registry_renders_zero_rows(self):
        table = render_profile(MetricRegistry(), 1.0)
        for stage in PROFILE_STAGES:
            assert stage in table
        assert "wall time: 1.000s" in table

    def test_totals_and_work_counters_rendered(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        registry = telemetry.metrics
        registry.get("pipeline_stage_seconds_extend").observe(0.25)
        registry.get("pipeline_stage_seconds_extend").observe(0.75)
        registry.get("pipeline_reads_total").inc(5)
        table = render_profile(registry, 2.0)
        lines = table.splitlines()
        extend_row = next(l for l in lines if l.startswith("extend"))
        assert "2" in extend_row.split()  # calls
        assert "1.000" in extend_row  # total seconds
        assert "work: reads=5" in table

    def test_filter_stage_rows_rendered_from_published_cascade(self):
        # publish_cascade names: <backend>_filter_<stage>_<field>.
        registry = MetricRegistry()
        registry.counter("bitvector_filter_shouldered_checked").inc(31)
        registry.counter("bitvector_filter_shouldered_rejected").inc(0)
        registry.counter("bitvector_filter_shouldered_false_accepts").inc(12)
        registry.counter("bitvector_filter_shouldered_cycles").inc(62)
        registry.gauge(
            "bitvector_filter_shouldered_reject_fraction"
        ).set_max(0.0)
        registry.counter("bitvector_filter_myers_checked").inc(31)
        registry.counter("bitvector_filter_myers_rejected").inc(12)
        registry.gauge("bitvector_filter_myers_reject_fraction").set_max(
            12 / 31
        )
        table = render_profile(registry, 1.0)
        shouldered_row = next(
            l for l in table.splitlines()
            if l.startswith("bitvector/shouldered")
        )
        fields = shouldered_row.split()
        assert fields[1:] == ["31", "0", "12", "0.0%"]
        myers_row = next(
            l for l in table.splitlines() if l.startswith("bitvector/myers")
        )
        assert "38.7%" in myers_row

    def test_kernel_dedupe_line_rendered(self):
        registry = MetricRegistry()
        registry.counter("bitvector_kernel_batches").inc(2)
        registry.counter("bitvector_kernel_lanes").inc(40)
        registry.counter("bitvector_kernel_lanes_scored").inc(25)
        registry.counter("bitvector_kernel_windows_requested").inc(40)
        registry.counter("bitvector_kernel_windows_fetched").inc(30)
        registry.gauge(
            "bitvector_kernel_window_dedupe_rate"
        ).set_max(0.25)
        table = render_profile(registry, 1.0)
        kernel_line = next(
            l for l in table.splitlines() if l.startswith("kernel[bitvector]")
        )
        assert "2 batches" in kernel_line
        assert "25/40 lanes scored" in kernel_line
        assert "30/40 windows fetched" in kernel_line
        assert "25.0% deduped" in kernel_line

    def test_no_filter_or_kernel_lines_without_metrics(self):
        table = render_profile(MetricRegistry(), 1.0)
        assert "filter stage" not in table
        assert "kernel[" not in table

    def test_table_reconciles_with_merged_registry(self):
        # The --jobs N acceptance check in miniature: totals rendered from
        # a merged registry equal the sum of the shard registries.
        shard_a = PipelineTelemetry(clock=ManualClock())
        shard_b = PipelineTelemetry(clock=ManualClock())
        shard_a.metrics.get("pipeline_stage_seconds_seed").observe(0.5)
        shard_b.metrics.get("pipeline_stage_seconds_seed").observe(1.5)
        parent = PipelineTelemetry(clock=ManualClock())
        parent.merge_snapshot(shard_a.snapshot(), pid=1)
        parent.merge_snapshot(shard_b.snapshot(), pid=2)
        table = render_profile(parent.metrics, 1.0)
        seed_row = next(
            l for l in table.splitlines() if l.startswith("seed")
        )
        assert "2.000" in seed_row
        merged = parent.metrics.get("pipeline_stage_seconds_seed")
        assert merged.total == 2.0
        assert merged.count == 2
        assert merged.bounds == SECONDS_BUCKETS
