"""Exporter formats: Prometheus text, metrics JSON, traces, profile table."""

import json

from repro.telemetry.clock import ManualClock
from repro.telemetry.exporters import (
    METRICS_SCHEMA_VERSION,
    PROFILE_STAGES,
    metrics_json,
    prometheus_text,
    render_profile,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.runtime import SECONDS_BUCKETS, STAGES, PipelineTelemetry
from repro.telemetry.tracer import Tracer


def populated_registry():
    registry = MetricRegistry()
    registry.counter("reads_total", "reads processed").inc(7)
    registry.gauge("peak_depth").set(3.5)
    hist = registry.histogram("latency_seconds", (0.1, 1.0), "span latency")
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestPrometheusText:
    def test_empty_registry_exports_empty_text(self):
        assert prometheus_text(MetricRegistry()) == ""

    def test_counter_and_gauge_lines(self):
        text = prometheus_text(populated_registry())
        assert "# HELP reads_total reads processed" in text
        assert "# TYPE reads_total counter" in text
        assert "reads_total 7" in text
        assert "# TYPE peak_depth gauge" in text
        assert "peak_depth 3.5" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = prometheus_text(populated_registry()).splitlines()
        bucket_lines = [l for l in lines if l.startswith("latency_seconds")]
        assert bucket_lines == [
            'latency_seconds_bucket{le="0.1"} 1',
            'latency_seconds_bucket{le="1"} 2',
            'latency_seconds_bucket{le="+Inf"} 3',
            "latency_seconds_sum 2.55",
            "latency_seconds_count 3",
        ]

    def test_help_line_omitted_without_help_text(self):
        registry = MetricRegistry()
        registry.counter("bare").inc()
        text = prometheus_text(registry)
        assert "# HELP" not in text
        assert "# TYPE bare counter" in text


class TestMetricsJson:
    def test_empty_registry_export(self):
        payload = metrics_json(MetricRegistry())
        assert payload == {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_payload_is_json_serialisable(self):
        payload = metrics_json(populated_registry())
        restored = json.loads(json.dumps(payload))
        assert restored["metrics"]["counters"]["reads_total"]["value"] == 7


class TestWriters:
    def test_prom_suffix_selects_text_format(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(path, populated_registry())
        assert "# TYPE reads_total counter" in path.read_text()

    def test_json_default_with_parent_creation(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "metrics.json"
        write_metrics(path, populated_registry())
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION

    def test_write_chrome_trace(self, tmp_path):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        tracer.begin("seed")
        clock.advance(0.001)
        tracer.end()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        trace = json.loads(path.read_text())
        assert [e["ph"] for e in trace["traceEvents"]] == ["B", "E"]


class TestRenderProfile:
    def test_stage_constant_matches_runtime(self):
        # The profile table and the runtime's histograms must agree on
        # the stage taxonomy, or stages silently vanish from the table.
        assert PROFILE_STAGES == STAGES

    def test_empty_registry_renders_zero_rows(self):
        table = render_profile(MetricRegistry(), 1.0)
        for stage in PROFILE_STAGES:
            assert stage in table
        assert "wall time: 1.000s" in table

    def test_totals_and_work_counters_rendered(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        registry = telemetry.metrics
        registry.get("pipeline_stage_seconds_extend").observe(0.25)
        registry.get("pipeline_stage_seconds_extend").observe(0.75)
        registry.get("pipeline_reads_total").inc(5)
        table = render_profile(registry, 2.0)
        lines = table.splitlines()
        extend_row = next(l for l in lines if l.startswith("extend"))
        assert "2" in extend_row.split()  # calls
        assert "1.000" in extend_row  # total seconds
        assert "work: reads=5" in table

    def test_table_reconciles_with_merged_registry(self):
        # The --jobs N acceptance check in miniature: totals rendered from
        # a merged registry equal the sum of the shard registries.
        shard_a = PipelineTelemetry(clock=ManualClock())
        shard_b = PipelineTelemetry(clock=ManualClock())
        shard_a.metrics.get("pipeline_stage_seconds_seed").observe(0.5)
        shard_b.metrics.get("pipeline_stage_seconds_seed").observe(1.5)
        parent = PipelineTelemetry(clock=ManualClock())
        parent.merge_snapshot(shard_a.snapshot(), pid=1)
        parent.merge_snapshot(shard_b.snapshot(), pid=2)
        table = render_profile(parent.metrics, 1.0)
        seed_row = next(
            l for l in table.splitlines() if l.startswith("seed")
        )
        assert "2.000" in seed_row
        merged = parent.metrics.get("pipeline_stage_seconds_seed")
        assert merged.total == 2.0
        assert merged.count == 2
        assert merged.bounds == SECONDS_BUCKETS
