"""Metric primitives and the shard-merge protocol.

The property tests mirror how :mod:`repro.parallel.engine` actually uses
the registry: a stream of observations is split into random shards, each
shard records into its own registry, the snapshots are merged in random
order and random groupings — and the result must equal the unsharded
registry exactly.
"""

import random

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricRegistry

BOUNDS = (1.0, 2.0, 4.0, 8.0)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5


class TestGauge:
    def test_set_and_set_max(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set_max(3.0)  # lower: ignored
        assert gauge.value == 5.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0

    def test_merge_takes_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(2.0)
        b.set(7.0)
        a.merge(b)
        assert a.value == 7.0


class TestHistogramBuckets:
    """Bucket-edge semantics: inclusive upper bounds, +Inf overflow."""

    def test_value_on_bound_lands_in_that_bucket(self):
        hist = Histogram("h", BOUNDS)
        for value in BOUNDS:
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1, 0]

    def test_value_just_above_bound_lands_in_next_bucket(self):
        hist = Histogram("h", BOUNDS)
        hist.observe(1.0000001)
        assert hist.counts == [0, 1, 0, 0, 0]

    def test_value_below_first_bound_lands_in_first_bucket(self):
        hist = Histogram("h", BOUNDS)
        hist.observe(0.0)
        hist.observe(-3.0)
        assert hist.counts == [2, 0, 0, 0, 0]

    def test_value_above_last_bound_overflows(self):
        hist = Histogram("h", BOUNDS)
        hist.observe(8.5)
        hist.observe(1e9)
        assert hist.counts == [0, 0, 0, 0, 2]

    def test_sum_count_mean(self):
        hist = Histogram("h", BOUNDS)
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.count == 2
        assert hist.total == 4.0
        assert hist.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert Histogram("h", BOUNDS).mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", BOUNDS).merge(Histogram("h", (1.0, 2.0)))


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_histogram_bounds_mismatch_rejected(self):
        registry = MetricRegistry()
        registry.histogram("h", BOUNDS)
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 2.0))

    def test_metrics_sorted_by_name(self):
        registry = MetricRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert [m.name for m in registry.metrics()] == ["alpha", "zeta"]

    def test_merge_adopts_unknown_metrics(self):
        a, b = MetricRegistry(), MetricRegistry()
        b.counter("only_in_b").inc(3)
        a.merge(b)
        assert a.get("only_in_b").value == 3


def _apply_observations(registry, observations):
    """Replay an observation stream into a registry."""
    for kind, value in observations:
        if kind == "count":
            registry.counter("events_total").inc(value)
        elif kind == "level":
            registry.gauge("peak_level").set_max(value)
        else:
            registry.histogram("latency", BOUNDS).observe(value)


def _random_observations(rng, n):
    """Random streams over quarter-integer values.

    Quarter-integers are exactly representable in binary floating point,
    so sums are exact and independent of addition order — the property
    under test is the merge protocol, not float rounding.
    """
    out = []
    for __ in range(n):
        kind = rng.choice(("count", "level", "observe"))
        out.append((kind, rng.randrange(0, 40) / 4.0))
    return out


class TestMergeProperties:
    """merge() is associative and commutative over random shard splits."""

    def test_sharded_merge_equals_unsharded(self):
        rng = random.Random(1234)
        for trial in range(20):
            observations = _random_observations(rng, rng.randrange(1, 60))
            reference = MetricRegistry()
            _apply_observations(reference, observations)

            # Random split into 1-6 shards, merged in shuffled order.
            shard_count = rng.randrange(1, 7)
            shards = [MetricRegistry() for __ in range(shard_count)]
            for observation in observations:
                shard = shards[rng.randrange(shard_count)]
                _apply_observations(shard, [observation])
            rng.shuffle(shards)

            merged = MetricRegistry()
            for shard in shards:
                merged.merge_snapshot(shard.snapshot())
            assert merged.snapshot() == reference.snapshot(), (
                f"trial {trial}: sharded merge diverged"
            )

    def test_merge_is_associative_over_groupings(self):
        rng = random.Random(99)
        observations = _random_observations(rng, 30)
        thirds = [observations[0:10], observations[10:20], observations[20:30]]
        registries = []
        for part in thirds:
            registry = MetricRegistry()
            _apply_observations(registry, part)
            registries.append(registry)
        a, b, c = registries

        # (a + b) + c
        left = MetricRegistry()
        left.merge_snapshot(a.snapshot())
        left.merge_snapshot(b.snapshot())
        left.merge_snapshot(c.snapshot())
        # a + (b + c), built by pre-merging b and c first
        bc = MetricRegistry()
        bc.merge_snapshot(b.snapshot())
        bc.merge_snapshot(c.snapshot())
        right = MetricRegistry()
        right.merge_snapshot(a.snapshot())
        right.merge_snapshot(bc.snapshot())
        assert left.snapshot() == right.snapshot()

    def test_merge_is_commutative(self):
        rng = random.Random(7)
        a, b = MetricRegistry(), MetricRegistry()
        _apply_observations(a, _random_observations(rng, 25))
        _apply_observations(b, _random_observations(rng, 25))
        ab = MetricRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba = MetricRegistry()
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_snapshot_roundtrips_through_json_types(self):
        import json

        rng = random.Random(5)
        registry = MetricRegistry()
        _apply_observations(registry, _random_observations(rng, 40))
        wire = json.loads(json.dumps(registry.snapshot()))
        restored = MetricRegistry()
        restored.merge_snapshot(wire)
        assert restored.snapshot() == registry.snapshot()
