"""Run manifests: fingerprints, git SHA capture, writer."""

import json
from dataclasses import dataclass

from repro.pipeline.genax import GenAxConfig
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_fingerprint,
    git_commit,
    write_manifest,
)


@dataclass
class _DemoConfig:
    k: int = 12
    bound: int = 8
    label: str = "x"


class TestFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(_DemoConfig()) == config_fingerprint(
            _DemoConfig()
        )

    def test_sensitive_to_field_values(self):
        assert config_fingerprint(_DemoConfig(k=12)) != config_fingerprint(
            _DemoConfig(k=13)
        )

    def test_dataclass_and_equivalent_dict_agree(self):
        # Fingerprints hash field *values*, not dataclass identity.
        as_dict = {"k": 12, "bound": 8, "label": "x"}
        assert config_fingerprint(_DemoConfig()) == config_fingerprint(as_dict)

    def test_real_config_fingerprints(self):
        a = config_fingerprint(GenAxConfig())
        b = config_fingerprint(GenAxConfig(edit_bound=9))
        assert a != b
        assert len(a) == 16


class TestGitCommit:
    def test_returns_sha_inside_checkout(self):
        sha = git_commit()
        assert sha is None or (len(sha) == 40 and sha.strip() == sha)

    def test_none_outside_checkout(self, tmp_path):
        assert git_commit(cwd=tmp_path) is None


class TestRunManifest:
    def test_for_run_captures_config(self):
        manifest = RunManifest.for_run(
            command=["repro-genax", "align"],
            backend="genax",
            config=GenAxConfig(edit_bound=9),
            seed=5,
        )
        assert manifest.backend == "genax"
        assert manifest.config["edit_bound"] == 9
        assert manifest.seed == 5
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
        assert manifest.started_utc  # ISO stamp present

    def test_writer_roundtrip(self, tmp_path):
        manifest = RunManifest.for_run(
            command=["repro-genax"], backend="genax", config=GenAxConfig()
        )
        manifest.wall_seconds = 1.5
        manifest.reads_total = 40
        path = tmp_path / "run.manifest.json"
        write_manifest(path, manifest)
        loaded = json.loads(path.read_text())
        assert loaded["wall_seconds"] == 1.5
        assert loaded["reads_total"] == 40
        assert loaded["config_fingerprint"] == manifest.config_fingerprint
