"""Driver and shard-parallel integration: spans, counters, concordance."""

import pytest

from repro.parallel import ParallelAligner
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.telemetry.runtime import deactivate, telemetry_session

CONFIG = GenAxConfig(edit_bound=10, segment_count=2)


@pytest.fixture(autouse=True)
def clean_global():
    deactivate()
    yield
    deactivate()


@pytest.fixture()
def reads(small_reference):
    """A handful of reads cut straight from the reference (plus one junk)."""
    sequence = small_reference.sequence
    out = [
        (f"r{i}", sequence[start : start + 80])
        for i, start in enumerate(range(500, 3000, 500))
    ]
    out.append(("junk", "ACGT" * 20))
    return out


class TestDriverTelemetry:
    def test_mappings_identical_with_and_without_telemetry(
        self, small_reference, reads
    ):
        plain = GenAxAligner(small_reference, CONFIG).align_batch(reads)
        with telemetry_session():
            traced = GenAxAligner(small_reference, CONFIG).align_batch(reads)
        assert [
            (m.position, m.reverse, m.score, str(m.cigar)) for m in plain
        ] == [(m.position, m.reverse, m.score, str(m.cigar)) for m in traced]

    def test_spans_nest_and_balance(self, small_reference, reads):
        with telemetry_session() as telemetry:
            GenAxAligner(small_reference, CONFIG).align_batch(reads)
        tracer = telemetry.tracer
        assert tracer.open_spans == 0
        names = {name for __, name, __ts, __pid in tracer.events}
        assert {"align_batch", "seed", "read", "select"} <= names
        # Every B has a matching E.
        balance = 0
        for phase, *_ in tracer.events:
            balance += 1 if phase == "B" else -1
            assert balance >= 0
        assert balance == 0

    def test_work_counters_match_alignment_stats(self, small_reference, reads):
        with telemetry_session() as telemetry:
            aligner = GenAxAligner(small_reference, CONFIG)
            aligner.align_batch(reads)
        registry = telemetry.metrics
        assert (
            registry.get("pipeline_reads_total").value
            == aligner.stats.reads_total
        )
        assert registry.get("pipeline_candidates_per_read").count == len(reads)
        assert registry.get("pipeline_seeds_total").value > 0

    def test_driver_without_session_records_nothing(
        self, small_reference, reads
    ):
        aligner = GenAxAligner(small_reference, CONFIG)
        aligner.align_batch(reads)
        # No bundle was active: the facade's driver holds no telemetry.
        assert aligner._driver.telemetry is None


class TestParallelMerge:
    def test_jobs2_concordant_and_registries_reconcile(
        self, small_reference, reads
    ):
        """The acceptance check: a sharded run's merged registry equals the
        serial registry on every work counter, and mappings stay
        bit-identical."""
        with telemetry_session() as serial_tel:
            serial_mapped = GenAxAligner(small_reference, CONFIG).align_batch(
                reads
            )
        with telemetry_session() as parallel_tel:
            parallel = ParallelAligner(small_reference, CONFIG, jobs=2)
            parallel_mapped = parallel.align_batch(reads)

        assert [
            (m.position, m.reverse, m.score, str(m.cigar))
            for m in parallel_mapped
        ] == [
            (m.position, m.reverse, m.score, str(m.cigar))
            for m in serial_mapped
        ]
        for name in (
            "pipeline_reads_total",
            "pipeline_seeds_total",
            "pipeline_candidates_total",
            "pipeline_extensions_total",
        ):
            assert (
                parallel_tel.metrics.get(name).value
                == serial_tel.metrics.get(name).value
            ), name
        for name in (
            "pipeline_candidates_per_read",
            "pipeline_smem_length",
            "pipeline_edit_distance",
        ):
            serial_hist = serial_tel.metrics.get(name)
            parallel_hist = parallel_tel.metrics.get(name)
            assert parallel_hist.counts == serial_hist.counts, name
            assert parallel_hist.count == serial_hist.count, name

    def test_worker_spans_land_on_distinct_lanes(self, small_reference, reads):
        with telemetry_session() as telemetry:
            telemetry.stage_begin("run")  # parent-side root span, lane 0
            ParallelAligner(small_reference, CONFIG, jobs=2).align_batch(reads)
            telemetry.stage_end("run")
        lanes = {pid for __, __n, __ts, pid in telemetry.tracer.events}
        # Parent lane 0 plus at least one worker lane (chunk_id + 1).
        assert 0 in lanes
        assert any(pid > 0 for pid in lanes)

    def test_parallel_off_session_ships_no_snapshots(
        self, small_reference, reads
    ):
        parallel = ParallelAligner(small_reference, CONFIG, jobs=2)
        mapped = parallel.align_batch(reads)
        assert len(mapped) == len(reads)
