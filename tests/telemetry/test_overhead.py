"""The disabled-telemetry guarantee: zero allocations, no tracked state.

The tentpole's overhead budget (<3% disabled) rests on the disabled hot
path being *literally free*: one ``is None`` check per hook site and no
allocations attributable to the telemetry package.  tracemalloc can
verify the allocation half exactly, and unlike a wall-clock bound it is
immune to CI noise.
"""

import tracemalloc

import pytest

from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.telemetry.runtime import deactivate, telemetry_session

CONFIG = GenAxConfig(edit_bound=10, segment_count=2)


@pytest.fixture(autouse=True)
def clean_global():
    deactivate()
    yield
    deactivate()


def telemetry_allocations(trace_filter, action):
    """Bytes allocated by telemetry source files while *action* runs."""
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot().filter_traces([trace_filter])
        action()
        after = tracemalloc.take_snapshot().filter_traces([trace_filter])
    finally:
        tracemalloc.stop()
    return sum(stat.size_diff for stat in after.compare_to(before, "filename"))


class TestDisabledPathAllocations:
    def test_disabled_telemetry_allocates_nothing_per_read(
        self, small_reference
    ):
        reads = [
            (f"r{i}", small_reference.sequence[start : start + 80])
            for i, start in enumerate(range(400, 2400, 400))
        ]
        aligner = GenAxAligner(small_reference, CONFIG)
        aligner.align_batch(reads)  # warm every lazy structure first
        telemetry_filter = tracemalloc.Filter(
            inclusive=True, filename_pattern="*telemetry*"
        )
        grew = telemetry_allocations(
            telemetry_filter, lambda: aligner.align_batch(reads)
        )
        assert grew == 0, (
            f"disabled telemetry allocated {grew} bytes during alignment"
        )

    def test_enabled_telemetry_does_allocate(self, small_reference):
        # The guard above is meaningful only if the filter would catch
        # real telemetry allocations; prove it does when enabled.
        reads = [("r0", small_reference.sequence[400:480])]
        telemetry_filter = tracemalloc.Filter(
            inclusive=True, filename_pattern="*telemetry*"
        )

        def traced_run():
            with telemetry_session():
                GenAxAligner(small_reference, CONFIG).align_batch(reads)

        assert telemetry_allocations(telemetry_filter, traced_run) > 0


class TestDisabledPathState:
    def test_driver_holds_no_bundle_by_default(self, small_reference):
        aligner = GenAxAligner(small_reference, CONFIG)
        assert aligner._driver.telemetry is None

    def test_stats_identical_with_and_without_telemetry(self, small_reference):
        reads = [
            (f"r{i}", small_reference.sequence[start : start + 80])
            for i, start in enumerate(range(400, 1600, 400))
        ]
        plain = GenAxAligner(small_reference, CONFIG)
        plain.align_batch(reads)
        with telemetry_session():
            traced = GenAxAligner(small_reference, CONFIG)
            traced.align_batch(reads)
        assert plain.stats == traced.stats
