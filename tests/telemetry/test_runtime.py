"""The activation global, the session context, and the pipeline bundle."""

import pytest

from repro.telemetry.clock import ManualClock
from repro.telemetry.runtime import (
    STAGES,
    PipelineTelemetry,
    activate,
    active_telemetry,
    deactivate,
    telemetry_session,
)


@pytest.fixture(autouse=True)
def clean_global():
    deactivate()
    yield
    deactivate()


class TestActivation:
    def test_off_by_default(self):
        assert active_telemetry() is None

    def test_activate_and_deactivate(self):
        bundle = PipelineTelemetry(clock=ManualClock())
        assert activate(bundle) is bundle
        assert active_telemetry() is bundle
        deactivate()
        assert active_telemetry() is None

    def test_session_restores_previous_bundle(self):
        outer = activate(PipelineTelemetry(clock=ManualClock()))
        with telemetry_session() as inner:
            assert active_telemetry() is inner
            assert inner is not outer
        assert active_telemetry() is outer

    def test_session_restores_none(self):
        with telemetry_session():
            assert active_telemetry() is not None
        assert active_telemetry() is None

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert active_telemetry() is None

    def test_session_accepts_explicit_bundle(self):
        bundle = PipelineTelemetry(clock=ManualClock())
        with telemetry_session(bundle) as active:
            assert active is bundle


class _FakeSeed:
    def __init__(self, length):
        self.length = length


class _FakeCigar:
    def __init__(self, edits):
        self._edits = edits

    def edit_count(self):
        return self._edits


class _FakeExtension:
    def __init__(self, edits=None):
        self.cigar = None if edits is None else _FakeCigar(edits)


class TestPipelineTelemetry:
    def test_stage_histograms_precreated_for_all_stages(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        for stage in STAGES:
            assert f"pipeline_stage_seconds_{stage}" in telemetry.metrics

    def test_stage_end_feeds_stage_histogram(self):
        clock = ManualClock()
        telemetry = PipelineTelemetry(clock=clock)
        telemetry.stage_begin("extend")
        clock.advance(0.5)
        assert telemetry.stage_end("extend") == 0.5
        hist = telemetry.metrics.get("pipeline_stage_seconds_extend")
        assert hist.count == 1
        assert hist.total == 0.5

    def test_non_stage_span_does_not_feed_histograms(self):
        clock = ManualClock()
        telemetry = PipelineTelemetry(clock=clock)
        telemetry.stage_begin("align_run")
        clock.advance(1.0)
        telemetry.stage_end("align_run")
        for stage in STAGES:
            assert telemetry.metrics.get(
                f"pipeline_stage_seconds_{stage}"
            ).count == 0

    def test_observe_seeds_counts_and_lengths(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        telemetry.observe_seeds([_FakeSeed(20), _FakeSeed(101)])
        assert telemetry.metrics.get("pipeline_seeds_total").value == 2
        assert telemetry.metrics.get("pipeline_smem_length").count == 2

    def test_observe_extension_reads_cigar(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        telemetry.observe_extension(_FakeExtension(edits=3))
        telemetry.observe_extension(_FakeExtension(edits=None))
        assert telemetry.metrics.get("pipeline_extensions_total").value == 2
        # The cigar-less extension contributes no distance observation.
        assert telemetry.metrics.get("pipeline_edit_distance").count == 1

    def test_read_done_feeds_candidate_histogram(self):
        telemetry = PipelineTelemetry(clock=ManualClock())
        telemetry.observe_candidate()
        telemetry.read_done(candidate_count=1)
        assert telemetry.metrics.get("pipeline_reads_total").value == 1
        assert telemetry.metrics.get("pipeline_candidates_per_read").count == 1

    def test_snapshot_merge_roundtrip_with_pid_lanes(self):
        clock = ManualClock()
        worker = PipelineTelemetry(clock=clock)
        worker.stage_begin("seed")
        clock.advance(0.25)
        worker.stage_end("seed")
        worker.read_done(0)

        parent = PipelineTelemetry(clock=ManualClock())
        parent.merge_snapshot(worker.snapshot(), pid=4)
        assert parent.metrics.get("pipeline_reads_total").value == 1
        assert parent.metrics.get("pipeline_stage_seconds_seed").count == 1
        assert [e[3] for e in parent.tracer.events] == [4, 4]
