"""Tracer: nested spans, durations, absorb, Chrome trace export."""

import pytest

from repro.telemetry.clock import ManualClock
from repro.telemetry.tracer import Tracer


@pytest.fixture()
def clock():
    return ManualClock()


class TestSpans:
    def test_end_returns_duration_seconds(self, clock):
        tracer = Tracer(clock=clock)
        tracer.begin("seed")
        clock.advance(0.25)
        assert tracer.end() == 0.25

    def test_nesting_closes_innermost_first(self, clock):
        tracer = Tracer(clock=clock)
        tracer.begin("outer")
        clock.advance(1.0)
        tracer.begin("inner")
        clock.advance(0.5)
        assert tracer.end() == 0.5  # inner
        clock.advance(1.0)
        assert tracer.end() == 2.5  # outer spans the whole window
        assert tracer.open_spans == 0

    def test_open_spans_tracks_stack_depth(self, clock):
        tracer = Tracer(clock=clock)
        assert tracer.open_spans == 0
        tracer.begin("a")
        tracer.begin("b")
        assert tracer.open_spans == 2

    def test_events_are_flat_tuples(self, clock):
        tracer = Tracer(clock=clock, pid=3)
        tracer.begin("seed")
        clock.advance(0.001)
        tracer.end()
        assert tracer.events == [
            ("B", "seed", 0, 3),
            ("E", "seed", 1000, 3),
        ]


class TestAbsorb:
    def test_absorb_retags_pid_lane(self, clock):
        worker = Tracer(clock=clock)
        worker.begin("extend")
        clock.advance(0.002)
        worker.end()
        parent = Tracer(clock=clock)
        parent.absorb(worker.snapshot_events(), pid=7)
        assert parent.events == [
            ("B", "extend", 0, 7),
            ("E", "extend", 2000, 7),
        ]

    def test_snapshot_is_a_copy(self, clock):
        tracer = Tracer(clock=clock)
        tracer.begin("x")
        tracer.end()
        snap = tracer.snapshot_events()
        snap.append(("B", "bogus", 0, 0))
        assert len(tracer.events) == 2


class TestChromeTrace:
    def test_structure_loads_in_perfetto(self, clock):
        tracer = Tracer(clock=clock)
        tracer.begin("read")
        clock.advance(0.01)
        tracer.begin("seed")
        clock.advance(0.01)
        tracer.end()
        tracer.end()
        trace = tracer.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["ph"] for e in events] == ["B", "B", "E", "E"]
        assert all(e["cat"] == "pipeline" for e in events)
        assert all(set(e) == {"ph", "name", "cat", "ts", "pid", "tid"}
                   for e in events)

    def test_lanes_sorted_by_pid_then_time(self, clock):
        parent = Tracer(clock=clock)
        clock.advance(1.0)
        parent.begin("merge")
        parent.end()
        worker = Tracer(clock=ManualClock())
        worker.begin("chunk")
        worker.end()
        parent.absorb(worker.snapshot_events(), pid=2)
        ordered = parent.chrome_trace()["traceEvents"]
        assert [e["pid"] for e in ordered] == [0, 0, 2, 2]

    def test_begin_end_order_preserved_on_timestamp_ties(self, clock):
        # A zero-duration span: B and E share a timestamp; the stable
        # sort must keep B first or the viewer drops the span.
        tracer = Tracer(clock=clock)
        tracer.begin("instant")
        tracer.end()
        events = tracer.chrome_trace()["traceEvents"]
        assert [e["ph"] for e in events] == ["B", "E"]
