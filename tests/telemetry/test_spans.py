"""Span aggregation: self-time attribution, lanes, unbalanced traces."""

import pytest

from repro.telemetry.spans import (
    SpanStat,
    aggregate_chrome_events,
    aggregate_events,
)


class TestSelfTime:
    def test_nested_child_charged_to_itself_not_the_parent(self):
        events = [
            ("B", "outer", 0, 0),
            ("B", "inner", 100, 0),
            ("E", "inner", 400, 0),
            ("E", "outer", 1000, 0),
        ]
        stats = aggregate_events(events)
        assert stats["outer"].total_s == pytest.approx(1000e-6)
        assert stats["outer"].self_s == pytest.approx(700e-6)
        assert stats["inner"].self_s == pytest.approx(300e-6)

    def test_two_levels_of_nesting(self):
        events = [
            ("B", "a", 0, 0),
            ("B", "b", 10, 0),
            ("B", "c", 20, 0),
            ("E", "c", 30, 0),
            ("E", "b", 50, 0),
            ("E", "a", 100, 0),
        ]
        stats = aggregate_events(events)
        assert stats["a"].self_s == pytest.approx(60e-6)
        assert stats["b"].self_s == pytest.approx(30e-6)
        assert stats["c"].self_s == pytest.approx(10e-6)
        # Self-times partition the root's inclusive time exactly.
        total_self = sum(s.self_s for s in stats.values())
        assert total_self == pytest.approx(stats["a"].total_s)

    def test_repeated_span_names_accumulate(self):
        events = [
            ("B", "extend", 0, 0),
            ("E", "extend", 10, 0),
            ("B", "extend", 20, 0),
            ("E", "extend", 50, 0),
        ]
        stats = aggregate_events(events)
        assert stats["extend"].count == 2
        assert stats["extend"].total_s == pytest.approx(40e-6)


class TestLanes:
    def test_pids_aggregate_independently(self):
        # Interleaved timestamps across two lanes must not nest.
        events = [
            ("B", "shard", 0, 1),
            ("B", "shard", 5, 2),
            ("E", "shard", 100, 1),
            ("E", "shard", 205, 2),
        ]
        stats = aggregate_events(events)
        assert stats["shard"].count == 2
        assert stats["shard"].total_s == pytest.approx(300e-6)
        assert stats["shard"].self_s == pytest.approx(300e-6)


class TestUnbalanced:
    def test_stray_end_is_dropped(self):
        events = [
            ("E", "ghost", 10, 0),
            ("B", "real", 20, 0),
            ("E", "real", 30, 0),
        ]
        stats = aggregate_events(events)
        assert "ghost" not in stats
        assert stats["real"].count == 1

    def test_span_left_open_is_not_fabricated(self):
        events = [("B", "crashed", 0, 0)]
        assert aggregate_events(events) == {}


class TestChromeEvents:
    def test_dict_events_match_tuple_events(self):
        tuples = [
            ("B", "seed", 0, 3),
            ("E", "seed", 70, 3),
        ]
        dicts = [
            {"ph": "B", "name": "seed", "ts": 0, "pid": 3},
            {"ph": "E", "name": "seed", "ts": 70, "pid": 3},
        ]
        assert aggregate_chrome_events(dicts) == aggregate_events(tuples)

    def test_non_duration_phases_ignored(self):
        dicts = [
            {"ph": "M", "name": "process_name", "ts": 0, "pid": 0},
            {"ph": "B", "name": "seed", "ts": 0, "pid": 0},
            {"ph": "E", "name": "seed", "ts": 10, "pid": 0},
            {"ph": "X", "name": "complete", "ts": 5, "pid": 0, "dur": 2},
        ]
        stats = aggregate_chrome_events(dicts)
        assert set(stats) == {"seed"}


class TestMerge:
    def test_merge_sums_fields(self):
        a = SpanStat("seed", count=1, total_s=1.0, self_s=0.5)
        b = SpanStat("seed", count=2, total_s=3.0, self_s=2.0)
        a.merge(b)
        assert (a.count, a.total_s, a.self_s) == (3, 4.0, 2.5)

    def test_merge_rejects_different_names(self):
        with pytest.raises(ValueError, match="cannot merge"):
            SpanStat("seed").merge(SpanStat("extend"))
