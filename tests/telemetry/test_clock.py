"""The clock module: the one sanctioned timing surface (GX104)."""

from repro.telemetry.clock import ManualClock, StopWatch, monotonic_s


class TestMonotonic:
    def test_monotonic_never_decreases(self):
        readings = [monotonic_s() for __ in range(100)]
        assert readings == sorted(readings)

    def test_returns_seconds_as_float(self):
        assert isinstance(monotonic_s(), float)


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5
        clock.advance(0.5)
        assert clock() == 2.0

    def test_custom_start(self):
        clock = ManualClock(start=10.0)
        assert clock() == 10.0

    def test_rejects_backwards_steps(self):
        clock = ManualClock()
        try:
            clock.advance(-1.0)
        except ValueError:
            return
        raise AssertionError("negative advance must raise")


class TestStopWatch:
    def test_elapsed_with_manual_clock(self):
        clock = ManualClock()
        watch = StopWatch(clock=clock)
        clock.advance(2.5)
        assert watch.elapsed() == 2.5

    def test_restart_resets_origin(self):
        clock = ManualClock()
        watch = StopWatch(clock=clock)
        clock.advance(5.0)
        watch.restart()
        clock.advance(1.0)
        assert watch.elapsed() == 1.0
