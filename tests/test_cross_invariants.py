"""Cross-engine invariants: every implementation must agree on shared inputs.

The repository contains many engines computing related quantities (the
point of the paper is that they differ in *cost*, never in *answers*).
This suite runs them all over the same randomized workloads:

* edit distance: DP, Silla (2-D/3-D/collapsed), the SillaX edit machine,
  Myers bit-vector, the classic LA, the ULA, and the STE-compiled LA;
* bounded affine extension: the (i,j,e) oracle, the scoring machine, the
  dense machine, and the traceback machine;
* unbounded extension: full Gotoh, wide-banded Gotoh, wide X-drop, and the
  systolic wavefront array;
* local alignment: scalar Gotoh and Farrar's striped formulation;
* SMEM seeding: position tables, the FM-index, and the brute-force scan.
"""

import random

import pytest

from repro.align.banded import banded_extension_score
from repro.align.edit_distance import levenshtein
from repro.align.extension_oracle import extension_oracle
from repro.align.levenshtein_automaton import LevenshteinAutomaton
from repro.align.myers import myers_bounded
from repro.align.smith_waterman import extension_align, local_align
from repro.align.striped_sw import striped_local_score
from repro.align.systolic_sw import SystolicBandedSW
from repro.align.ula import UniversalLevenshteinAutomaton
from repro.align.xdrop import xdrop_extension_score
from repro.automata.levenshtein_nfa import compile_levenshtein_nfa
from repro.core.silla import Silla
from repro.core.three_d_silla import ThreeDSilla
from repro.seeding.fmindex import FmIndexSeeder
from repro.seeding.index import KmerIndex
from repro.seeding.smem import SmemConfig, SmemFinder
from repro.seeding.smem_oracle import brute_force_smems
from repro.sillax.dense import DenseScoringMachine
from repro.sillax.edit_machine import EditMachine
from repro.sillax.scoring_machine import ScoringMachine
from repro.sillax.traceback_machine import TracebackMachine


def _pairs(seed, count, max_len=12):
    rng = random.Random(seed)
    for trial in range(count):
        alpha = "AC" if trial % 3 == 0 else "ACGT"
        n, m = rng.randrange(0, max_len), rng.randrange(0, max_len)
        a = "".join(rng.choice(alpha) for _ in range(n))
        b = "".join(rng.choice(alpha) for _ in range(m))
        k = rng.randrange(0, 5)
        yield a, b, k


class TestEditDistanceConsensus:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_engines_agree(self, seed):
        for a, b, k in _pairs(seed, 40):
            truth = levenshtein(a, b)
            expected = truth if truth <= k else None
            assert Silla(k).distance(a, b) == expected
            assert ThreeDSilla(k).distance(a, b) == expected
            assert EditMachine(k).distance(a, b) == expected
            assert myers_bounded(a, b, k) == expected
            assert LevenshteinAutomaton(a, k).distance(b) == expected
            assert UniversalLevenshteinAutomaton(k).run(a, b) == expected
            assert compile_levenshtein_nfa(a, k).accepts(b) == (expected is not None)


class TestBoundedExtensionConsensus:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_machines_match_oracle(self, seed):
        for a, b, k in _pairs(seed, 25):
            oracle = extension_oracle(a, b, k)
            scoring = ScoringMachine(k).run(a, b)
            dense = DenseScoringMachine(k).run(a, b)
            traceback = TracebackMachine(k).align(a, b)
            assert scoring.best_score == oracle.best_clipped_score
            assert scoring.final_score == oracle.final_score
            assert dense.best_score == oracle.best_clipped_score
            assert dense.final_score == oracle.final_score
            assert traceback.score == oracle.best_clipped_score


class TestUnboundedExtensionConsensus:
    @pytest.mark.parametrize("seed", [7, 8])
    def test_wide_configurations_match_full_dp(self, seed):
        for a, b, __ in _pairs(seed, 25, max_len=14):
            exact = extension_align(a, b).alignment.score
            wide = len(a) + len(b) + 1
            banded, __cells = banded_extension_score(a, b, wide)
            assert banded == exact
            assert xdrop_extension_score(a, b, 10**6).score == exact
            assert SystolicBandedSW(wide).best_score(a, b) == exact


class TestLocalConsensus:
    @pytest.mark.parametrize("seed", [9, 10])
    def test_striped_matches_scalar(self, seed):
        rng = random.Random(seed)
        for __ in range(20):
            a = "".join(rng.choice("ACGT") for _ in range(rng.randrange(1, 25)))
            b = "".join(rng.choice("ACGT") for _ in range(rng.randrange(1, 25)))
            assert (
                striped_local_score(a, b, lanes=rng.choice([1, 4, 16])).score
                == local_align(a, b).alignment.score
            )


class TestSeedingConsensus:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_three_seeders_agree(self, seed):
        rng = random.Random(seed)
        segment = "".join(rng.choice("ACGT") for _ in range(250))
        k = 4
        table = SmemFinder(KmerIndex.build(segment, k), SmemConfig(k=k))
        fm = FmIndexSeeder(segment, k)
        for __ in range(8):
            start = rng.randrange(0, 200)
            read = list(segment[start : start + 40])
            for __ in range(rng.randrange(0, 3)):
                read[rng.randrange(len(read))] = rng.choice("ACGT")
            read = "".join(read)
            want = [
                (s.read_offset, s.length, s.hits)
                for s in brute_force_smems(segment, read, k)
            ]
            got_table = [
                (s.read_offset, s.length, s.hits) for s in table.find_seeds(read)
            ]
            got_fm = [(s.read_offset, s.length, s.hits) for s in fm.find_seeds(read)]
            assert got_table == want
            assert got_fm == want


class TestDeterminism:
    def test_pipeline_runs_are_reproducible(self, small_reference, simulated_reads):
        from repro.pipeline.genax import GenAxAligner, GenAxConfig

        reads = [(s.name, s.sequence) for s in simulated_reads[:6]]
        results = []
        for __ in range(2):
            aligner = GenAxAligner(
                small_reference, GenAxConfig(edit_bound=10, segment_count=3)
            )
            results.append(
                [
                    (m.position, m.reverse, m.score, str(m.cigar))
                    for m in aligner.align_reads(reads)
                ]
            )
        assert results[0] == results[1]
