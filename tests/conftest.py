"""Shared fixtures: small deterministic genomes, reads and helpers.

Flakiness policy: every RNG in this suite is an explicitly seeded
``random.Random`` (enforced repo-wide by genaxlint GX101), and hypothesis
runs derandomized so property tests draw the same examples on every
machine and every run — a red tier-1 build always reproduces locally.
"""

import random

import pytest
from hypothesis import settings

from repro.genome.reads import ReadSimulator
from repro.genome.reference import ReferenceGenome, make_reference
from repro.genome.variants import simulate_variants

settings.register_profile("pinned", derandomize=True)
settings.load_profile("pinned")


@pytest.fixture(scope="session")
def small_reference() -> ReferenceGenome:
    """A 20 kbp synthetic reference with planted repeats."""
    return make_reference(20_000, seed=11)


@pytest.fixture(scope="session")
def tiny_reference() -> ReferenceGenome:
    """A 2 kbp reference for the most expensive integration tests."""
    return make_reference(2_000, seed=5)


@pytest.fixture(scope="session")
def simulated_reads(small_reference):
    """Reads with variants + sequencing errors and their ground truth."""
    rng = random.Random(23)
    variants = simulate_variants(small_reference.sequence, rng)
    simulator = ReadSimulator(
        small_reference, variants, read_length=101, seed=29
    )
    return simulator.simulate(24)


def random_dna_pair(rng: random.Random, max_len: int = 14, alphabet: str = "ACGT"):
    """A pair of short random strings (shared by the fuzz helpers)."""
    n = rng.randrange(0, max_len)
    m = rng.randrange(0, max_len)
    left = "".join(rng.choice(alphabet) for _ in range(n))
    right = "".join(rng.choice(alphabet) for _ in range(m))
    return left, right
