"""§II: Levenshtein automata on a spatial automata processor vs Silla.

Quantifies the paper's argument against AP/Cache-Automaton acceleration of
seed extension: the LA is string dependent, so *every read* requires
reprogramming O(K*N) STEs and O(K*N) routing entries, while one Silla
instance streams read after read with zero reconfiguration.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.automata.levenshtein_nfa import compile_levenshtein_nfa
from repro.automata.processor import AutomataProcessor
from repro.core.silla import Silla, silla_state_count

K = 4
READ_LENGTH = 48  # scaled so the STE compilation stays snappy
READS = 12


def _reads(rng):
    out = []
    for __ in range(READS):
        base = "".join(rng.choice("ACGT") for _ in range(READ_LENGTH))
        text = list(base)
        for __ in range(rng.randrange(0, K)):
            text[rng.randrange(READ_LENGTH)] = rng.choice("ACGT")
        out.append((base, "".join(text)))
    return out


def test_sec2_automata_processor_cost(results_dir):
    rng = random.Random(83)
    pairs = _reads(rng)

    processor = AutomataProcessor()
    silla = Silla(K)
    agreements = 0
    for pattern, text in pairs:
        compiled = compile_levenshtein_nfa(pattern, K)
        processor.load(compiled.nfa)
        ap_answer = processor.run(text)
        silla_answer = silla.matches(pattern, text)
        agreements += ap_answer == silla_answer
    stats = processor.stats

    lines = [
        f"{READS} reads of {READ_LENGTH} bp, K = {K}",
        f"answer agreement with Silla: {agreements}/{READS}",
        "",
        "automata-processor cost:",
        f"  reconfigurations: {stats.reconfigurations} (one per read)",
        f"  STE writes: {stats.ste_writes}",
        f"  routing writes: {stats.routing_writes}",
        f"  streaming cycles: {stats.cycles}",
        f"  config writes per streaming cycle: "
        f"{stats.total_config_writes / max(1, stats.cycles):.1f}",
        "",
        f"Silla cost: 0 reconfigurations; a fixed {silla_state_count(K)}-state "
        f"grid streams every pair",
    ]
    write_result(results_dir, "sec2_automata_processor", lines)

    assert agreements == READS
    assert stats.reconfigurations == READS
    # The §II claim: per-read reprogramming dominates the streaming work.
    assert stats.total_config_writes > stats.cycles


def test_sec2_automata_bench(benchmark):
    rng = random.Random(91)
    pattern = "".join(rng.choice("ACGT") for _ in range(READ_LENGTH))
    text = pattern[:20] + "T" + pattern[21:]

    def run():
        processor = AutomataProcessor()
        processor.load(compile_levenshtein_nfa(pattern, K).nfa)
        return processor.run(text)

    benchmark(run)


def test_sec2_silla_bench(benchmark):
    rng = random.Random(93)
    pattern = "".join(rng.choice("ACGT") for _ in range(READ_LENGTH))
    text = pattern[:20] + "T" + pattern[21:]
    silla = Silla(K)

    def run():
        return silla.matches(pattern, text)

    benchmark(run)
