"""Table II: GenAx area breakdown, plus the 5.6x area-reduction headline."""

import pytest

from benchmarks.conftest import write_result
from repro.model import constants
from repro.model.area import GenAxAreaModel


def test_table2_breakdown(results_dir):
    model = GenAxAreaModel()
    table = model.table2()
    paper = {
        "Seeding lanes (x128)": constants.SEEDING_LANES_AREA_MM2,
        "SillaX lanes (x4)": constants.SILLAX_LANES_AREA_MM2,
        "On-chip SRAM (68 MB)": constants.ONCHIP_SRAM_AREA_MM2,
        "Total": constants.GENAX_TOTAL_AREA_MM2,
    }
    lines = ["Table II (mm^2)            model      paper"]
    for name, value in table.items():
        lines.append(f"  {name:24s} {value:8.2f} {paper[name]:8.2f}")
        assert value == pytest.approx(paper[name], abs=0.01)
    lines.append(
        f"area reduction vs dual-socket Xeon (paper 5.6x): "
        f"{model.reduction_vs_cpu():.2f}x"
    )
    write_result(results_dir, "table2_area", lines)


def test_table2_bench(benchmark):
    def build():
        return GenAxAreaModel().total_mm2

    assert benchmark(build) > 0
