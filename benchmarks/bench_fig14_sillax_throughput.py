"""Fig. 14: raw seed-extension throughput — SillaX vs software baselines.

Two complementary measurements:

1. **Cycle model**: the SillaX lane simulator measures cycles/hit on the
   real workload; at 4 lanes x 2 GHz this gives modelled Khits/s, compared
   against the paper-measured SeqAn (CPU) and SW# (GPU) numbers.
2. **Work model**: the instrumented banded-Gotoh baseline counts DP cells
   per hit, giving a machine-independent SillaX-vs-software work ratio that
   must preserve the paper's ordering.
"""

import pytest

from benchmarks.conftest import EDIT_BOUND, write_result
from repro.align.banded import banded_extension_score
from repro.genome.sequence import reverse_complement
from repro.model import constants
from repro.model.throughput import SillaXCycleModel, SillaXThroughputModel
from repro.sillax.lane import SillaXLane


def _extension_pairs(reference, workload):
    pairs = []
    for sim in workload:
        sequence = sim.sequence
        if sim.reverse:
            sequence = reverse_complement(sequence)
        window = reference.fetch(
            sim.true_position, sim.true_position + len(sequence) + EDIT_BOUND
        )
        pairs.append((window, sequence))
    return pairs


def test_fig14_throughput_series(reference, workload, results_dir):
    pairs = _extension_pairs(reference, workload)

    # Measure cycles/hit from the cycle-accurate lane.
    lane = SillaXLane(k=EDIT_BOUND)
    for window, sequence in pairs:
        lane.align_pair(window, sequence)
    measured_cycles = lane.stats.cycles_per_extension

    # Feed the measured workload into the throughput model (paper K = 40).
    model = SillaXThroughputModel(
        cycle_model=SillaXCycleModel(
            read_length=101,
            edit_bound=EDIT_BOUND,
            rerun_fraction=lane.stats.rerun_fraction,
            mean_rerun_cycles=(
                lane.stats.rerun_cycles / max(1, lane.stats.rerun_events)
            ),
        )
    )
    series = model.baseline_khits_per_second()

    # Software baseline work per hit, measured from the instrumented
    # implementations (machine-independent comparisons).
    from repro.align.striped_sw import striped_local_score
    from repro.align.xdrop import xdrop_extension_score

    total_cells = total_vec = total_xdrop = 0
    for window, sequence in pairs:
        __, cells = banded_extension_score(window, sequence, EDIT_BOUND)
        total_cells += cells
        total_vec += striped_local_score(window, sequence, lanes=16).vector_ops
        total_xdrop += xdrop_extension_score(window, sequence, x_drop=50).cells_computed
    cells_per_hit = total_cells / len(pairs)
    vec_per_hit = total_vec / len(pairs)
    xdrop_per_hit = total_xdrop / len(pairs)

    lines = [
        f"measured SillaX cycles/hit (K={EDIT_BOUND}): {measured_cycles:.1f}",
        f"banded-SW DP cells/hit (band={EDIT_BOUND}): {cells_per_hit:.0f}",
        f"striped-SW vector ops/hit (Farrar, 16 lanes): {vec_per_hit:.0f}",
        f"X-drop cells/hit (X=50, heuristic): {xdrop_per_hit:.0f}",
        "",
        "Fig. 14 series (Khits/s):",
    ]
    for name, value in series.items():
        lines.append(f"  {name:14s} {value:12.1f}")
    lines.append("")
    lines.append(
        f"SillaX/SeqAn ratio (paper 62.9x): "
        f"{series['SillaX'] / series['SeqAn (CPU)']:.1f}x"
    )
    lines.append(
        f"SillaX/SW# ratio (paper 5287x): "
        f"{series['SillaX'] / series['SW# (GPU)']:.0f}x"
    )
    write_result(results_dir, "fig14_sillax_throughput", lines)

    # Shape: SillaX wins by orders of magnitude; GPU trails CPU for short reads.
    assert series["SillaX"] > 50 * series["SeqAn (CPU)"]
    assert series["SeqAn (CPU)"] > series["SW# (GPU)"]
    # The lane's measured cost stays within 2x of the analytical cycle model.
    analytic = SillaXCycleModel(read_length=101, edit_bound=EDIT_BOUND).cycles_per_hit
    assert measured_cycles < 2 * analytic


def test_fig14_sillax_bench(benchmark, reference, workload):
    pairs = _extension_pairs(reference, workload)[:8]
    lane = SillaXLane(k=EDIT_BOUND)

    def run():
        for window, sequence in pairs:
            lane.align_pair(window, sequence)
        return lane.stats.cycles

    assert benchmark(run) > 0


def test_fig14_banded_sw_bench(benchmark, reference, workload):
    pairs = _extension_pairs(reference, workload)[:8]

    def run():
        total = 0
        for window, sequence in pairs:
            score, cells = banded_extension_score(window, sequence, EDIT_BOUND)
            total += cells
        return total

    assert benchmark(run) > 0
