"""Fig. 12: SillaX per-PE area and power versus clock frequency.

Regenerates both curves (edit machine and traceback machine) from the
calibrated synthesis model, checks the paper's anchor points and the 2 GHz
inflection, and benchmarks the model evaluation itself.
"""

import pytest

from benchmarks.conftest import write_result
from repro.model import constants
from repro.model.synthesis import (
    EDIT_PE,
    SCORING_PE,
    TRACEBACK_PE,
    frequency_sweep,
    optimal_frequency,
    system_frequency,
)

FREQUENCIES = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


def _rows():
    lines = ["freq_GHz  edit_area_um2  edit_power_uW  tb_area_um2  tb_power_uW"]
    for f in FREQUENCIES:
        edit = (
            f"{EDIT_PE.area_um2(f):14.2f} {EDIT_PE.power_uw(f):14.2f}"
            if f <= EDIT_PE.f_max_ghz
            else f"{'-':>14} {'-':>14}"
        )
        tb = (
            f"{TRACEBACK_PE.area_um2(f):12.1f} {TRACEBACK_PE.power_uw(f):12.1f}"
            if f <= TRACEBACK_PE.f_max_ghz
            else f"{'-':>12} {'-':>12}"
        )
        lines.append(f"{f:8.1f} {edit} {tb}")
    lines.append("")
    lines.append(f"system knee (paper: 2 GHz inflection): {system_frequency()} GHz")
    lines.append(
        f"edit machine @2GHz (paper 0.012 mm^2 / 0.047 W): "
        f"{EDIT_PE.machine_area_mm2(2.0, 40):.4f} mm^2 / "
        f"{EDIT_PE.machine_power_w(2.0, 40):.4f} W"
    )
    lines.append(
        f"traceback machine @2GHz (paper 1.41 mm^2 / 1.54 W): "
        f"{TRACEBACK_PE.machine_area_mm2(2.0, 40):.3f} mm^2 / "
        f"{TRACEBACK_PE.machine_power_w(2.0, 40):.3f} W"
    )
    return lines


def test_fig12_curves(results_dir):
    lines = _rows()
    write_result(results_dir, "fig12_pe_area_power", lines)
    # Anchors must hold (also asserted in the unit suite; re-checked here so
    # a bench run alone validates the figure).
    assert EDIT_PE.machine_area_mm2(2.0, 40) == pytest.approx(0.012, rel=0.01)
    assert TRACEBACK_PE.machine_power_w(2.0, 40) == pytest.approx(1.54, rel=0.01)
    assert system_frequency() == pytest.approx(2.0)


def test_fig12_bench(benchmark, results_dir):
    def sweep():
        total = 0.0
        for machine in (EDIT_PE, SCORING_PE, TRACEBACK_PE):
            for f, area, power, __ in frequency_sweep(machine, FREQUENCIES):
                total += area + power
        return total

    total = benchmark(sweep)
    assert total > 0
