"""§VIII-C: SillaX versus banded Smith-Waterman.

Three comparisons from that section:

* per-PE area: banded-SW PE ~300 um^2 vs SillaX edit PE ~9.7 um^2 at 5 GHz
  (30x) — regenerated from the synthesis model;
* time/space complexity: SillaX uses O(K^2) PEs and ~N cycles while banded
  SW computes O(K*N) cells — measured as work scaling with read length;
* LA context-switch cost (§II): reprogramming a Levenshtein automaton per
  read versus Silla's string independence.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.align.banded import banded_extension_score
from repro.align.levenshtein_automaton import la_stream_cost
from repro.core.silla import Silla, silla_state_count
from repro.model import constants
from repro.model.synthesis import EDIT_PE
from repro.sillax.lane import SillaXLane

K = 8
LENGTHS = [50, 100, 200, 400]


def _random_pair(rng, length):
    reference = "".join(rng.choice("ACGT") for _ in range(length + K))
    query = list(reference[:length])
    for __ in range(3):
        p = rng.randrange(length)
        query[p] = rng.choice("ACGT")
    return reference, "".join(query)


def test_sec8c_comparison(results_dir):
    rng = random.Random(77)
    lines = [
        f"PE area at 5 GHz: banded SW {constants.BANDED_SW_PE_AREA_UM2:.0f} um^2, "
        f"SillaX {EDIT_PE.area_um2(5.0):.1f} um^2 "
        f"-> {constants.BANDED_SW_PE_AREA_UM2 / EDIT_PE.area_um2(5.0):.0f}x (paper 30x)",
        "",
        "scaling with read length (K fixed):",
        "  N    sillax_cycles  banded_cells  silla_states",
    ]
    cycle_counts = []
    cell_counts = []
    for length in LENGTHS:
        reference, query = _random_pair(rng, length)
        lane = SillaXLane(k=K)
        result = lane.align_pair(reference, query)
        __, cells = banded_extension_score(reference, query, K)
        cycle_counts.append(result.total_cycles)
        cell_counts.append(cells)
        lines.append(
            f"  {length:4d} {result.total_cycles:13d} {cells:13d} "
            f"{silla_state_count(K):12d}"
        )

    # LA context-switch cost: one automaton per (different) read.
    items = []
    for __ in range(10):
        reference, query = _random_pair(rng, 60)
        items.append((reference[:60], query, K))
    la_cost = la_stream_cost(items)
    lines.append("")
    lines.append(
        f"LA over 10 distinct reads: {la_cost.reprogram_states} reprogram-state "
        f"writes vs 0 for Silla (string independent)"
    )
    write_result(results_dir, "sec8c_banded_sw", lines)

    # SillaX cycles scale ~linearly with N; banded cells scale ~(2K+1)*N.
    assert cycle_counts[-1] < cycle_counts[0] * (LENGTHS[-1] / LENGTHS[0]) * 1.5
    for cells, length in zip(cell_counts, LENGTHS):
        assert cells <= (2 * K + 1) * (length + K)
    assert la_cost.reprogram_states > 0


def test_sec8c_bench(benchmark):
    rng = random.Random(99)
    reference, query = _random_pair(rng, 100)

    def run():
        return Silla(K).distance(reference[:100], query)

    benchmark(run)
