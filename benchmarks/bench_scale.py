"""Capacity demonstration: a scaled 'whole-genome' batch run.

Not a paper figure — a system test at the largest size the Python
simulator comfortably handles: a 200 kbp genome with planted repeats,
variants, and 120 reads mapped segment-major through the full GenAx
pipeline, with accuracy scored against simulation truth and the hardware
counters reported.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.genome.reads import ErrorProfile, ReadSimulator
from repro.genome.reference import make_reference
from repro.genome.variants import simulate_variants
from repro.pipeline.counters import collect_counters
from repro.pipeline.genax import GenAxAligner, GenAxConfig

GENOME_BP = 200_000
READS = 120


@pytest.fixture(scope="module")
def big_workload():
    reference = make_reference(GENOME_BP, seed=777)
    rng = random.Random(778)
    variants = simulate_variants(reference.sequence, rng)
    simulator = ReadSimulator(
        reference,
        variants,
        read_length=101,
        seed=779,
        error_profile=ErrorProfile(rate_start=0.01, rate_end=0.03),
    )
    return reference, simulator.simulate(READS)


def test_scale_batch_run(big_workload, results_dir):
    reference, reads = big_workload
    aligner = GenAxAligner(
        reference, GenAxConfig(edit_bound=12, segment_count=8)
    )
    mapped = aligner.align_batch([(s.name, s.sequence) for s in reads])

    accurate = sum(
        1
        for m, s in zip(mapped, reads)
        if not m.is_unmapped and abs(m.position - s.true_position) <= 12
    )
    counters = collect_counters(aligner)
    lines = [
        f"genome: {GENOME_BP:,} bp in 8 segments; reads: {READS} x 101 bp",
        f"accuracy vs simulation truth (<= 12 bp): {accurate}/{READS}",
        "",
        counters.render(),
    ]
    write_result(results_dir, "scale_batch_run", lines)

    assert accurate >= int(0.9 * READS)
    assert counters.reads_mapped >= int(0.9 * READS)


def test_scale_bench(benchmark, big_workload):
    reference, reads = big_workload
    subset = [(s.name, s.sequence) for s in reads[:15]]

    def run():
        aligner = GenAxAligner(
            reference, GenAxConfig(edit_bound=12, segment_count=8)
        )
        return aligner.align_batch(subset)

    mapped = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(mapped) == len(subset)
