"""Fig. 16: seeding-accelerator optimizations.

(a) Average hits per read under naive hashing, fixed-stride SMEMs and full
    binary-extension SMEMs — the filtering cascade.
(b) Intersection lookups per read under linear CAM scans, the binary-search
    fallback, and binary + probing.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.genome.reference import ReferenceBuilder, RepeatSpec
from repro.seeding.accelerator import SeedingAccelerator
from repro.seeding.smem import SeedingMode, SmemConfig

KMER = 12


@pytest.fixture(scope="module")
def repetitive_reference():
    """A genome with heavy repeats: the regime Fig. 16's optimizations target.

    Real genomes have poly-A runs and short tandem repeats whose k-mers
    carry hundreds of hits (§VIII-B names AA...A and ATAT...A); the random
    50 kbp genome is too unique to exercise the CAM overflow path, so this
    fixture plants aggressive repeats.
    """
    builder = ReferenceBuilder(
        length=60_000,
        seed=404,
        repeats=RepeatSpec(
            dispersed_repeat_count=6,
            dispersed_repeat_length=300,
            dispersed_copies=4,
            tandem_repeat_count=8,
            tandem_unit_length=2,
            tandem_copies=150,
            mutation_rate=0.005,
        ),
    )
    return builder.build(name="repetitive")


@pytest.fixture(scope="module")
def repetitive_reads(repetitive_reference):
    rng = random.Random(505)
    sequence = repetitive_reference.sequence
    reads = []
    for __ in range(40):
        start = rng.randrange(0, len(sequence) - 101)
        read = list(sequence[start : start + 101])
        for __ in range(rng.randrange(0, 4)):
            p = rng.randrange(101)
            read[p] = rng.choice("ACGT")
        reads.append("".join(read))
    return reads


def _hits_per_read(reference, reads, mode):
    accel = SeedingAccelerator(
        reference, SmemConfig(k=KMER, mode=mode), segment_count=2
    )
    accel.seed_reads(reads)
    return accel.stats.hits_per_read, accel.stats


def test_fig16a_hits_per_read(repetitive_reference, repetitive_reads, results_dir):
    reference, reads = repetitive_reference, repetitive_reads
    naive, __ = _hits_per_read(reference, reads, SeedingMode.NAIVE)
    fixed, __ = _hits_per_read(reference, reads, SeedingMode.SMEM_FIXED)
    smem, __ = _hits_per_read(reference, reads, SeedingMode.SMEM)
    lines = [
        "Fig. 16a: average hits per read",
        f"  naive hash      {naive:10.1f}",
        f"  + SMEM (fixed)  {fixed:10.1f}",
        f"  + binary ext.   {smem:10.1f}",
        f"naive/smem filtering factor: {naive / max(smem, 1e-9):.1f}x",
    ]
    write_result(results_dir, "fig16a_hits_per_read", lines)
    # The paper's claim: optimizations filter hits by orders of magnitude.
    assert naive > 5 * smem
    assert fixed >= smem * 0.5  # fixed-stride is no better a filter


def test_fig16b_cam_lookups(repetitive_reference, repetitive_reads, results_dir):
    reference, reads = repetitive_reference, repetitive_reads

    def run(use_binary, probe):
        accel = SeedingAccelerator(
            reference,
            SmemConfig(
                k=KMER,
                use_binary_fallback=use_binary,
                probe=probe,
                cam_size=512,  # the paper's CAM size
            ),
            segment_count=2,
        )
        accel.seed_reads(reads)
        return accel.stats

    linear = run(use_binary=False, probe=False)
    binary = run(use_binary=True, probe=False)
    probed = run(use_binary=True, probe=True)
    lines = [
        "Fig. 16b: intersection lookups per read",
        f"  linear CAM        {linear.lookups_per_read:10.1f}",
        f"  + binary search   {binary.lookups_per_read:10.1f}"
        f"   (overflow fallbacks: {binary.intersections.overflow_fallbacks})",
        f"  + probing         {probed.lookups_per_read:10.1f}",
    ]
    write_result(results_dir, "fig16b_cam_lookups", lines)
    # The repetitive genome must actually exercise the overflow path, and
    # binary search must cut lookups; probing must not regress it much.
    assert binary.intersections.overflow_fallbacks > 0
    assert binary.lookups_per_read < linear.lookups_per_read
    assert probed.lookups_per_read <= binary.lookups_per_read * 1.2


def test_fig16_seeding_bench(benchmark, reference, workload):
    reads = [s.sequence for s in workload[:10]]

    def run():
        accel = SeedingAccelerator(
            reference, SmemConfig(k=KMER), segment_count=2
        )
        return accel.seed_reads(reads)

    seeds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(seeds) == len(reads)
