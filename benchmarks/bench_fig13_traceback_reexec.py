"""Fig. 13 + §VIII-A broken-trail statistics.

Runs the SillaX traceback machine over the simulated read workload and
measures (a) the fraction of extensions needing re-execution (paper: 7.59%
of reads) and (b) the distribution of cycles spent in re-execution (paper:
>60% of events resolve within the first N = 101 cycles).
"""

import pytest

from benchmarks.conftest import EDIT_BOUND, write_result
from repro.sillax.lane import SillaXLane


def _run_workload(reference, workload, lane):
    from repro.genome.sequence import reverse_complement

    for sim in workload:
        window_start = sim.true_position
        sequence = sim.sequence
        if sim.reverse:
            sequence = reverse_complement(sequence)
        lane.extend(reference, sequence, window_start)


def test_fig13_rerun_distribution(reference, workload, results_dir):
    lane = SillaXLane(k=EDIT_BOUND)
    _run_workload(reference, workload, lane)
    stats = lane.stats
    assert stats.extensions == len(workload)

    samples = sorted(stats.rerun_cycle_samples)
    n = 101
    within_n = sum(1 for c in samples if c <= n) / len(samples) if samples else 1.0
    lines = [
        f"extensions: {stats.extensions}",
        f"rerun fraction (paper: 7.59% of reads): {stats.rerun_fraction:.4f}",
        f"rerun events resolved within N={n} cycles (paper: >60%): {within_n:.2%}",
        "rerun cycle histogram (bucket_upper_bound count):",
    ]
    for upper in range(100, 1601, 100):
        count = sum(1 for c in samples if upper - 100 < c <= upper)
        lines.append(f"  {upper:5d} {count}")
    write_result(results_dir, "fig13_traceback_reexec", lines)

    # Shape assertions: re-execution is the exception, and short.
    assert stats.rerun_fraction < 0.5
    if samples:
        assert within_n >= 0.5


def test_fig13_bench(benchmark, reference, workload):
    subset = workload[:10]

    def run():
        lane = SillaXLane(k=EDIT_BOUND)
        _run_workload(reference, subset, lane)
        return lane.stats.cycles

    cycles = benchmark(run)
    assert cycles > 0
