"""Pre-alignment filter-cascade sweep -> ``BENCH_filters.json``.

Not a paper figure: this is the acceptance benchmark for the repo's
composable filter cascade (:mod:`repro.filters`).  The workload is built
to look like the hard case pre-alignment filters exist for — a
repeat-rich genome (hundreds of diverged copies of one unit) read with
enough errors that SMEM seeds fragment and hit every copy — so spurious
extension candidates dominate and the cascade has junk to kill.  On that
workload the sweep measures, per cascade spec:

* **candidates_checked / rejected_before_dp / reject_rate** — how many
  extension candidates the cascade vetoed before any DP or SillaX lane
  ran (the full ``shouldered -> sneakysnake -> myers`` cascade must
  clear ``REJECT_TARGET`` = 95%);
* **mappings_changed** — rows differing from the unfiltered baseline
  (the cascade is lossless; the acceptance bar is 0);
* **per-stage** checked / rejected / false-accept / cycle counters
  straight from :meth:`FilterCascade.report`, so the cheapest-first
  ordering argument is visible in the data;
* **wall-clock** — elapsed seconds and reads/s against the baseline.

Runs on the ``bitvector`` backend (the batch-capable software pipeline,
so the sweep also exercises the driver's cross-read ``filter_batch``
dispatch).  Results land in ``benchmarks/results/bench/BENCH_filters.json``
in the unified bench envelope (:mod:`repro.perf.schema`,
``schema_version`` 3; the bench-specific body lives under ``payload``)
so future PRs can regress against them.  Pre-envelope v1 files stay
readable through :func:`repro.perf.schema.load_bench`.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_filters.py [--quick]

``--quick`` shrinks the workload (120 repeat copies, 24 reads) for CI
smoke runs; the JSON schema is identical.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.filters import DEFAULT_CASCADE
from repro.genome.reference import ReferenceGenome
from repro.perf.schema import BENCH_SCHEMA_VERSION, bench_envelope, write_bench
from repro.perf.workloads import build_repeat_rich_workload
from repro.pipeline.bitvector import BitvectorAligner, BitvectorConfig
from repro.telemetry import monotonic_s

BENCHMARK = "bench_filters"
DEFAULT_OUT = (
    Path(__file__).parent / "results" / "bench" / "BENCH_filters.json"
)

#: The acceptance bar: fraction of extension candidates the full default
#: cascade must reject before any DP runs.
REJECT_TARGET = 0.95

FULL = dict(repeat_copies=400, reads=64)
QUICK = dict(repeat_copies=120, reads=24)

READ_LENGTH = 101
UNIT_BP = 600  # one repeat unit
FLANK_BP = 80  # random spacer between copies
DIVERGENCE = 0.12  # per-base substitution rate between repeat copies
READ_ERRORS = 10  # substitutions per read (fragments the SMEMs)
EDIT_BOUND = 12
KMER = 10  # short k so fragmented seeds still hit the repeat family

#: The cascade specs swept: each stage alone, the cheap pair, and the
#: full default cascade the acceptance bar applies to.
CASCADES: Tuple[Tuple[str, ...], ...] = (
    ("shouldered",),
    ("sneakysnake",),
    ("myers",),
    ("shouldered", "sneakysnake"),
    DEFAULT_CASCADE,
)

# Envelope keys every migrated BENCH file must carry (repro.perf.schema).
ENVELOPE_KEYS = (
    "schema_version", "benchmark", "quick", "machine", "workload",
    "payload", "machine_fingerprint", "workload_fingerprint", "run_id",
)

# Required payload structure: key -> required sub-keys (None = scalar).
# ``workload`` lives on the envelope, the rest under ``payload``;
# :func:`validate_result` checks each where it lives.
RESULT_SCHEMA: Dict[str, Optional[Sequence[str]]] = {
    "workload": ("genome_bp", "repeat_copies", "unit_bp", "divergence",
                 "reads", "read_length", "read_errors", "edit_bound", "kmer"),
    "baseline": ("elapsed_s", "reads_per_s"),
    "cascades": ("spec", "elapsed_s", "reads_per_s", "candidates_checked",
                 "rejected_before_dp", "reject_rate", "mappings_changed",
                 "stages"),
    "acceptance": ("target_reject_rate", "full_cascade_reject_rate",
                   "full_cascade_mappings_changed", "passed"),
}


def validate_result(data: dict) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    problems: List[str] = []
    for key in ENVELOPE_KEYS:
        if key not in data:
            problems.append(f"missing envelope key {key!r}")
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if data.get("benchmark") != BENCHMARK:
        problems.append(f"benchmark {data.get('benchmark')!r} != {BENCHMARK!r}")
    scope = dict(data.get("payload", {}))
    scope["workload"] = data.get("workload", {})
    for key, subkeys in RESULT_SCHEMA.items():
        if key not in scope:
            problems.append(f"missing key {key!r}")
            continue
        if subkeys is None:
            continue
        value = scope[key]
        entries = value if isinstance(value, list) else [value]
        if not entries:
            problems.append(f"{key!r} is empty")
        for entry in entries:
            if not isinstance(entry, dict):
                problems.append(f"{key!r} entry is not an object: {entry!r}")
                continue
            for subkey in subkeys:
                if subkey not in entry:
                    problems.append(f"{key!r} entry missing {subkey!r}")
    return problems


def build_workload(
    repeat_copies: int, read_count: int
) -> Tuple[ReferenceGenome, List[Tuple[str, str]]]:
    """Repeat-rich genome + high-error reads: spurious candidates dominate.

    Delegates to the registered generator in
    :mod:`repro.perf.workloads` (the ``repeat-rich`` profile), so the
    matrix runner and this bench build byte-identical inputs.  Every
    read is a genuine substring of the reference with ``READ_ERRORS``
    substitutions, so its true locus survives the cascade; the repeat
    family supplies hundreds of decoy placements whose distance exceeds
    the edit bound by construction (``READ_ERRORS`` +
    ~``DIVERGENCE * READ_LENGTH`` edits).
    """
    return build_repeat_rich_workload(
        repeat_copies=repeat_copies,
        reads=read_count,
        read_length=READ_LENGTH,
        unit_bp=UNIT_BP,
        flank_bp=FLANK_BP,
        divergence=DIVERGENCE,
        read_errors=READ_ERRORS,
    )


def mapping_key(mapped) -> List[Tuple[int, bool, int, str]]:
    return [(m.position, m.reverse, m.score, str(m.cigar)) for m in mapped]


def timed_align(aligner, reads) -> Tuple[float, list]:
    started = monotonic_s()
    mapped = aligner.align_batch(reads)
    elapsed = monotonic_s() - started
    return elapsed, mapped


def measure_cascade(
    reference: ReferenceGenome,
    reads: List[Tuple[str, str]],
    spec: Tuple[str, ...],
    baseline_key: list,
) -> dict:
    aligner = BitvectorAligner(
        reference,
        BitvectorConfig(k=KMER, edit_bound=EDIT_BOUND, filters=spec),
    )
    elapsed, mapped = timed_align(aligner, reads)
    cascade = aligner.cascade
    assert cascade is not None
    report = cascade.report()
    checked = report[0][1].checked
    rejected = sum(stage.rejected for __, stage in report)
    entry = {
        "spec": ",".join(spec),
        "elapsed_s": elapsed,
        "reads_per_s": len(reads) / elapsed,
        "candidates_checked": checked,
        "rejected_before_dp": rejected,
        "reject_rate": rejected / checked if checked else 0.0,
        "mappings_changed": sum(
            1 for a, b in zip(baseline_key, mapping_key(mapped)) if a != b
        ),
        "stages": [
            {
                "name": name,
                "checked": stage.checked,
                "rejected": stage.rejected,
                "reject_fraction": stage.reject_fraction,
                "false_accepts": stage.false_accepts,
                "cycles": stage.cycles,
            }
            for name, stage in report
        ],
    }
    print(f"filters={entry['spec']}: rejected "
          f"{rejected}/{checked} ({entry['reject_rate']:.1%}) before DP, "
          f"{entry['mappings_changed']} mappings changed, "
          f"{elapsed:.2f}s ({entry['reads_per_s']:.1f} reads/s)")
    return entry


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    shape = QUICK if args.quick else FULL
    reference, reads = build_workload(shape["repeat_copies"], shape["reads"])
    print(f"workload: {len(reference.sequence):,} bp "
          f"({shape['repeat_copies']} x {UNIT_BP} bp repeat copies at "
          f"{DIVERGENCE:.0%} divergence), {len(reads)} reads x "
          f"{READ_LENGTH} bp with {READ_ERRORS} errors, "
          f"edit_bound={EDIT_BOUND}, k={KMER}")

    baseline_aligner = BitvectorAligner(
        reference, BitvectorConfig(k=KMER, edit_bound=EDIT_BOUND)
    )
    baseline_s, baseline_mapped = timed_align(baseline_aligner, reads)
    baseline_key = mapping_key(baseline_mapped)
    baseline = {
        "elapsed_s": baseline_s,
        "reads_per_s": len(reads) / baseline_s,
    }
    print(f"baseline (no filters): {baseline_s:.2f}s "
          f"({baseline['reads_per_s']:.1f} reads/s)")

    cascades = [
        measure_cascade(reference, reads, spec, baseline_key)
        for spec in CASCADES
    ]

    full_entry = cascades[-1]
    assert full_entry["spec"] == ",".join(DEFAULT_CASCADE)
    acceptance = {
        "target_reject_rate": REJECT_TARGET,
        "full_cascade_reject_rate": full_entry["reject_rate"],
        "full_cascade_mappings_changed": full_entry["mappings_changed"],
        "passed": (
            full_entry["reject_rate"] > REJECT_TARGET
            and full_entry["mappings_changed"] == 0
        ),
    }
    print(f"acceptance: full cascade rejected "
          f"{acceptance['full_cascade_reject_rate']:.1%} before DP "
          f"(target > {REJECT_TARGET:.0%}), "
          f"{acceptance['full_cascade_mappings_changed']} mappings changed "
          f"-> {'PASS' if acceptance['passed'] else 'FAIL'}")

    result = bench_envelope(
        BENCHMARK,
        quick=args.quick,
        workload={
            "genome_bp": len(reference.sequence),
            "repeat_copies": shape["repeat_copies"],
            "unit_bp": UNIT_BP,
            "divergence": DIVERGENCE,
            "reads": len(reads),
            "read_length": READ_LENGTH,
            "read_errors": READ_ERRORS,
            "edit_bound": EDIT_BOUND,
            "kmer": KMER,
        },
        payload={
            "baseline": baseline,
            "cascades": cascades,
            "acceptance": acceptance,
        },
    )
    problems = validate_result(result)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}")
        return 1
    write_bench(args.out, result)
    print(f"wrote {args.out} (run {result['run_id']})")
    return 0 if acceptance["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(run())
