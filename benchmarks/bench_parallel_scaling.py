"""Parallel batch-alignment scaling sweep -> ``BENCH_parallel.json``.

Not a paper figure: this is the perf trajectory for the repo's own
parallel subsystem (:mod:`repro.parallel`).  On the ``bench_scale.py``
workload (200 kbp genome with planted repeats, 120 x 101 bp reads) it
measures, end to end:

* **index cache** — cold table build vs. warm :class:`IndexCache` load;
* **prefilter** — serial throughput with the Myers bit-vector candidate
  filter off vs. on, plus the reject rate;
* **sharded scaling** — ``ParallelAligner`` reads/s at each worker count,
  with every sharded run checked bit-identical to the serial
  ``GenAxAligner.align_batch`` mappings;
* **kernels** — the bitvector backend's scalar reference kernel vs. the
  batched NumPy lanes, with the batched run checked bit-identical to the
  scalar one (``mappings_changed`` must be 0) and the window-dedupe
  counters recorded;
* **combined** — best configuration (max jobs + prefilter + warm cache).

Results land in ``benchmarks/results/bench/BENCH_parallel.json`` in the
unified bench envelope (:mod:`repro.perf.schema`, ``schema_version`` 3:
machine fingerprint, workload fingerprint, content-addressed run id; the
bench-specific body lives under ``payload``) so future PRs can regress
against them.  Pre-envelope v2 files stay readable through
:func:`repro.perf.schema.load_bench`.  Wall-clock numbers are
machine-dependent — ``machine.cpu_count`` is recorded so a single-core
CI runner's flat scaling curve is interpretable.

Run directly (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]

``--quick`` shrinks the workload (50 kbp / 30 reads, jobs 1-2) for CI
smoke runs; the JSON schema is identical.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genome.reference import ReferenceGenome
from repro.parallel import IndexCache, ParallelAligner
from repro.perf.schema import BENCH_SCHEMA_VERSION, bench_envelope, write_bench
from repro.perf.workloads import build_illumina_workload
from repro.pipeline.bitvector import KERNELS, BitvectorAligner, BitvectorConfig
from repro.pipeline.genax import GenAxAligner, GenAxConfig
from repro.seeding.accelerator import SeedingAccelerator
from repro.telemetry import (
    monotonic_s,
    telemetry_session,
    write_chrome_trace,
    write_metrics,
)

BENCHMARK = "bench_parallel_scaling"
DEFAULT_OUT = (
    Path(__file__).parent / "results" / "bench" / "BENCH_parallel.json"
)

FULL = dict(genome_bp=200_000, reads=120, jobs=(1, 2, 4), segment_count=8)
QUICK = dict(genome_bp=50_000, reads=30, jobs=(1, 2), segment_count=4)
READ_LENGTH = 101
EDIT_BOUND = 12
KMER = 12

# Envelope keys every migrated BENCH file must carry (repro.perf.schema).
ENVELOPE_KEYS = (
    "schema_version", "benchmark", "quick", "machine", "workload",
    "payload", "machine_fingerprint", "workload_fingerprint", "run_id",
)

# Required payload structure: key -> required sub-keys (None = scalar).
# ``machine`` and ``workload`` live on the envelope, the rest under
# ``payload``; :func:`validate_result` checks each where it lives.
RESULT_SCHEMA: Dict[str, Optional[Sequence[str]]] = {
    "machine": ("cpu_count", "start_method"),
    "workload": ("genome_bp", "reads", "read_length", "segment_count",
                 "edit_bound", "kmer"),
    "index_cache": ("cold_build_s", "warm_load_s", "speedup"),
    "prefilter": ("candidates_checked", "candidates_rejected", "reject_rate",
                  "serial_off_s", "serial_on_s", "speedup"),
    "serial": ("elapsed_s", "reads_per_s"),
    "scaling": ("jobs", "elapsed_s", "reads_per_s", "identical_to_serial"),
    "kernels": ("kernel", "elapsed_s", "reads_per_s", "speedup_vs_serial",
                "mappings_changed"),
    "speedup_max_jobs_vs_1": None,
    "combined": ("jobs", "prefilter", "elapsed_s", "reads_per_s",
                 "speedup_vs_serial"),
}


def validate_result(data: dict) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    problems: List[str] = []
    for key in ENVELOPE_KEYS:
        if key not in data:
            problems.append(f"missing envelope key {key!r}")
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if data.get("benchmark") != BENCHMARK:
        problems.append(f"benchmark {data.get('benchmark')!r} != {BENCHMARK!r}")
    scope = dict(data.get("payload", {}))
    scope["machine"] = data.get("machine", {})
    scope["workload"] = data.get("workload", {})
    for key, subkeys in RESULT_SCHEMA.items():
        if key not in scope:
            problems.append(f"missing key {key!r}")
            continue
        if subkeys is None:
            continue
        value = scope[key]
        entries = value if isinstance(value, list) else [value]
        if not entries:
            problems.append(f"{key!r} is empty")
        for entry in entries:
            if not isinstance(entry, dict):
                problems.append(f"{key!r} entry is not an object: {entry!r}")
                continue
            for subkey in subkeys:
                if subkey not in entry:
                    problems.append(f"{key!r} entry missing {subkey!r}")
    return problems


def build_workload(
    genome_bp: int, read_count: int
) -> Tuple[ReferenceGenome, List[Tuple[str, str]]]:
    """The bench_scale.py workload: planted repeats, variants, 1-3% error.

    Delegates to the registered generator in
    :mod:`repro.perf.workloads` (the ``illumina-small`` profile), so the
    matrix runner and this bench build byte-identical inputs.
    """
    return build_illumina_workload(
        genome_bp=genome_bp, reads=read_count, read_length=READ_LENGTH
    )


def mapping_key(mapped) -> List[Tuple[int, bool, int, str]]:
    return [(m.position, m.reverse, m.score, str(m.cigar)) for m in mapped]


def measure_index_cache(
    reference: ReferenceGenome, config: GenAxConfig, cache_dir: str
) -> dict:
    """Cold build (populates the cache) vs. warm load of the same entry."""
    overlap = SeedingAccelerator.SEGMENT_OVERLAP
    cold = IndexCache(cache_dir)
    started = monotonic_s()
    cold.load_or_build(reference, config.k, config.segment_count, overlap)
    cold_s = monotonic_s() - started
    assert cold.stats.misses == 1, "expected a cold cache"

    warm = IndexCache(cache_dir)
    started = monotonic_s()
    warm.load_or_build(reference, config.k, config.segment_count, overlap)
    warm_s = monotonic_s() - started
    assert warm.stats.hits == 1, "expected a warm cache"
    return {
        "cold_build_s": cold_s,
        "warm_load_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def timed_align(aligner, reads) -> Tuple[float, list]:
    started = monotonic_s()
    mapped = aligner.align_batch(reads)
    elapsed = monotonic_s() - started
    return elapsed, mapped


def measure_kernels(
    reference: ReferenceGenome, reads, serial_s: float
) -> List[dict]:
    """Sweep the bitvector backend's kernels (scalar reference vs. batched
    NumPy lanes).  The scalar run is the concordance baseline: the batched
    kernel must reproduce its mappings bit-for-bit (``mappings_changed``
    is the count of rows that differ, and the acceptance bar is 0)."""
    results: List[dict] = []
    baseline_key: Optional[list] = None
    for kernel in ("scalar", "batched"):
        assert kernel in KERNELS, kernel
        aligner = BitvectorAligner(
            reference,
            BitvectorConfig(k=KMER, edit_bound=EDIT_BOUND, kernel=kernel),
        )
        elapsed, mapped = timed_align(aligner, reads)
        key = mapping_key(mapped)
        if baseline_key is None:
            baseline_key = key
        entry = {
            "kernel": kernel,
            "elapsed_s": elapsed,
            "reads_per_s": len(reads) / elapsed,
            "speedup_vs_serial": serial_s / elapsed if elapsed > 0 else
            float("inf"),
            "mappings_changed": sum(
                1 for a, b in zip(baseline_key, key) if a != b
            ),
        }
        kstats = aligner.kernel_stats
        entry["dedupe"] = {
            "windows_requested": kstats.windows_requested,
            "windows_fetched": kstats.windows_fetched,
            "window_dedupe_rate": kstats.window_dedupe_rate,
            "lanes": kstats.lanes,
            "kernel_lanes": kstats.kernel_lanes,
            "max_batch_lanes": kstats.max_batch_lanes,
        }
        results.append(entry)
        print(f"kernel={kernel}: {elapsed:.2f}s "
              f"({entry['reads_per_s']:.1f} reads/s, "
              f"{entry['speedup_vs_serial']:.2f}x serial), "
              f"{entry['mappings_changed']} mappings changed, "
              f"dedupe {kstats.windows_fetched}/{kstats.windows_requested} "
              f"windows fetched")
    return results


def capture_telemetry(
    reference: ReferenceGenome,
    config: GenAxConfig,
    reads,
    out: Path,
) -> dict:
    """One instrumented serial pass -> trace + metrics next to ``--out``.

    Runs *after* every timed measurement so tracer/histogram overhead can
    never skew the recorded wall-clock numbers; the artifacts give each
    benchmark run a stage-level breakdown (Perfetto-loadable trace plus
    the metric registry) alongside the scalar JSON.
    """
    trace_path = out.with_suffix(".trace.json")
    metrics_path = out.with_suffix(".metrics.json")
    with telemetry_session() as telemetry:
        telemetry.stage_begin("bench_serial_pass")
        GenAxAligner(reference, config).align_batch(reads)
        telemetry.stage_end("bench_serial_pass")
    out.parent.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(trace_path, telemetry.tracer)
    write_metrics(metrics_path, telemetry.metrics)
    return {"trace": str(trace_path), "metrics": str(metrics_path)}


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    shape = QUICK if args.quick else FULL
    print(f"workload: {shape['genome_bp']:,} bp, {shape['reads']} reads "
          f"x {READ_LENGTH} bp, segments={shape['segment_count']}")
    reference, reads = build_workload(shape["genome_bp"], shape["reads"])

    def config(**overrides) -> GenAxConfig:
        base = dict(
            edit_bound=EDIT_BOUND, k=KMER, segment_count=shape["segment_count"]
        )
        base.update(overrides)
        return GenAxConfig(**base)

    with tempfile.TemporaryDirectory(prefix="genax-cache-") as cache_dir:
        print("index cache: cold build vs warm load ...")
        cache = measure_index_cache(reference, config(), cache_dir)
        print(f"  cold {cache['cold_build_s']:.3f}s, warm "
              f"{cache['warm_load_s']:.3f}s -> {cache['speedup']:.1f}x")

        # Serial baseline (prefilter off) — the concordance reference.
        serial_aligner = GenAxAligner(reference, config(cache_dir=cache_dir))
        serial_s, serial_mapped = timed_align(serial_aligner, reads)
        serial_key = mapping_key(serial_mapped)
        serial = {"elapsed_s": serial_s, "reads_per_s": len(reads) / serial_s}
        print(f"serial: {serial_s:.2f}s ({serial['reads_per_s']:.1f} reads/s)")

        # Prefilter on, still serial: algorithmic win + reject rate.
        pf_aligner = GenAxAligner(
            reference, config(prefilter=True, cache_dir=cache_dir)
        )
        pf_s, pf_mapped = timed_align(pf_aligner, reads)
        checked = (pf_aligner.stats.candidates_filtered
                   + pf_aligner.stats.candidates_survived)
        prefilter = {
            "candidates_checked": checked,
            "candidates_rejected": pf_aligner.stats.candidates_filtered,
            "reject_rate": (pf_aligner.stats.candidates_filtered / checked
                            if checked else 0.0),
            "serial_off_s": serial_s,
            "serial_on_s": pf_s,
            "speedup": serial_s / pf_s if pf_s > 0 else float("inf"),
            "mappings_changed": sum(
                1 for a, b in zip(serial_key, mapping_key(pf_mapped)) if a != b
            ),
        }
        print(f"prefilter: rejected {prefilter['candidates_rejected']}/"
              f"{checked} ({prefilter['reject_rate']:.0%}), "
              f"{pf_s:.2f}s -> {prefilter['speedup']:.2f}x serial, "
              f"{prefilter['mappings_changed']} mappings changed")

        # Sharded sweep (prefilter off, like-for-like vs the serial baseline).
        scaling = []
        for jobs in shape["jobs"]:
            aligner = ParallelAligner(
                reference, config(cache_dir=cache_dir), jobs=jobs
            )
            elapsed, mapped = timed_align(aligner, reads)
            identical = mapping_key(mapped) == serial_key
            scaling.append({
                "jobs": jobs,
                "elapsed_s": elapsed,
                "reads_per_s": len(reads) / elapsed,
                "identical_to_serial": identical,
            })
            print(f"jobs={jobs}: {elapsed:.2f}s "
                  f"({scaling[-1]['reads_per_s']:.1f} reads/s), "
                  f"identical={identical}")

        # Kernel sweep: scalar reference vs batched NumPy bitvector lanes.
        kernels = measure_kernels(reference, reads, serial_s)

        # Best configuration: max jobs + prefilter + warm cache.
        best_jobs = max(shape["jobs"])
        combined_aligner = ParallelAligner(
            reference,
            config(prefilter=True, cache_dir=cache_dir),
            jobs=best_jobs,
        )
        combined_s, _ = timed_align(combined_aligner, reads)
        combined = {
            "jobs": best_jobs,
            "prefilter": True,
            "elapsed_s": combined_s,
            "reads_per_s": len(reads) / combined_s,
            "speedup_vs_serial": serial_s / combined_s,
        }
        print(f"combined (jobs={best_jobs}, prefilter, warm cache): "
              f"{combined_s:.2f}s -> {combined['speedup_vs_serial']:.2f}x serial")

        # Untimed instrumented pass: stage trace + metric artifacts.
        telemetry_paths = capture_telemetry(
            reference, config(cache_dir=cache_dir), reads, args.out
        )
        print(f"telemetry: {telemetry_paths['trace']}, "
              f"{telemetry_paths['metrics']}")

    result = bench_envelope(
        BENCHMARK,
        quick=args.quick,
        workload={
            "genome_bp": shape["genome_bp"],
            "reads": len(reads),
            "read_length": READ_LENGTH,
            "segment_count": shape["segment_count"],
            "edit_bound": EDIT_BOUND,
            "kmer": KMER,
        },
        payload={
            "index_cache": cache,
            "prefilter": prefilter,
            "serial": serial,
            "scaling": scaling,
            "kernels": kernels,
            "speedup_max_jobs_vs_1": (
                scaling[-1]["reads_per_s"] / scaling[0]["reads_per_s"]
            ),
            "combined": combined,
            # Optional key (not in RESULT_SCHEMA): older files stay valid.
            "telemetry": telemetry_paths,
        },
    )
    problems = validate_result(result)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}")
        return 1
    write_bench(args.out, result)
    print(f"wrote {args.out} (run {result['run_id']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(run())
