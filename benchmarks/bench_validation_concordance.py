"""§VIII-A validation: GenAx vs the BWA-MEM-like pipeline.

The paper ran all 787M reads and found SillaX's alignments concur with
BWA-MEM with 0.0023% variance, every difference being an equal-score tie.
This bench reruns that comparison on the simulated workload and reports the
same statistics.
"""

import pytest

from benchmarks.conftest import EDIT_BOUND, write_result
from repro.pipeline.bwamem import BwaMemAligner, BwaMemConfig
from repro.pipeline.genax import GenAxAligner, GenAxConfig


def test_concordance(reference, workload, results_dir):
    bwa = BwaMemAligner(reference, BwaMemConfig(band=EDIT_BOUND))
    genax = GenAxAligner(
        reference, GenAxConfig(edit_bound=EDIT_BOUND, segment_count=4)
    )

    score_matches = 0
    position_matches = 0
    tie_differences = 0
    score_differences = 0
    truth_hits = 0
    for sim in workload:
        a = bwa.align_read(sim.name, sim.sequence)
        b = genax.align_read(sim.name, sim.sequence)
        if a.score == b.score:
            score_matches += 1
        else:
            score_differences += 1
        if a.position == b.position and a.reverse == b.reverse:
            position_matches += 1
        elif a.score == b.score:
            tie_differences += 1
        if not b.is_unmapped and abs(b.position - sim.true_position) <= EDIT_BOUND:
            truth_hits += 1

    total = len(workload)
    lines = [
        f"reads compared: {total}",
        f"identical scores: {score_matches}/{total} "
        f"(paper: all same-score, 0.0023% positional variance)",
        f"identical positions: {position_matches}/{total}",
        f"equal-score tie differences: {tie_differences}",
        f"score differences: {score_differences}",
        f"GenAx within {EDIT_BOUND} bp of simulation truth: {truth_hits}/{total}",
    ]
    write_result(results_dir, "validation_concordance", lines)

    assert score_differences == 0, "every difference must be an equal-score tie"
    assert position_matches >= int(0.9 * total)
    assert truth_hits >= int(0.8 * total)


def test_concordance_bench(benchmark, reference, workload):
    subset = workload[:5]
    bwa = BwaMemAligner(reference, BwaMemConfig(band=EDIT_BOUND))

    def run():
        return [bwa.align_read(s.name, s.sequence) for s in subset]

    assert len(benchmark(run)) == len(subset)
