"""Long-read projection: SillaX throughput as reads grow (§I/§II motivation).

The paper argues Silla's O(K^2) state space is what lets the design ride
the long-read transition.  This bench projects the cycle model across read
lengths and error regimes: K scales with expected edits, tile fusion
(§IV-D) supplies the larger K at the cost of engine count, and throughput
degrades *linearly* in N — versus the quadratic cell growth of
Smith-Waterman measured alongside.
"""

import pytest

from benchmarks.conftest import write_result
from repro.genome.long_reads import LongReadErrorModel
from repro.model.throughput import SillaXCycleModel
from repro.sillax.composable import TileConfig

BASE_K = 40
TILES = 16
FREQUENCY_GHZ = 2.0

SCENARIOS = [
    ("Illumina 101 bp", 101, 0.02),
    ("PacBio-ish 1 kbp", 1_000, 0.05),
    ("Nanopore-ish 10 kbp", 10_000, 0.08),
]


def test_longread_projection(results_dir):
    array = TileConfig(base_k=BASE_K, tiles=TILES)
    lines = [
        f"tile array: {TILES} tiles of K={BASE_K} "
        f"(max fused K = {BASE_K * array.max_fused_factor})",
        "",
        f"{'scenario':22s} {'K':>5} {'fusion':>6} {'engines':>7} "
        f"{'cycles/hit':>10} {'Khits/s':>9} {'SW cells':>12}",
    ]
    khits = []
    for name, length, error_rate in SCENARIOS:
        model = LongReadErrorModel(error_rate=error_rate)
        expected = model.expected_edits(length)
        k_needed = int(expected + 3 * expected**0.5) + 4
        factor = max(1, -(-k_needed // BASE_K))
        if factor > array.max_fused_factor:
            factor = array.max_fused_factor
        k_engine = BASE_K * factor
        config = TileConfig(base_k=BASE_K, tiles=TILES, fused_factor=factor)
        engines = config.fused_engines + config.independent_engines
        # All tiles devoted to this read class: engines of the fused kind.
        engines_of_kind = TILES // (factor * factor)
        cycles = SillaXCycleModel(
            read_length=length, edit_bound=k_engine
        ).cycles_per_hit
        rate = engines_of_kind * FREQUENCY_GHZ * 1e9 / cycles / 1e3
        khits.append(rate)
        sw_cells = length * length  # the O(N^2) competitor
        lines.append(
            f"{name:22s} {k_engine:5d} {factor}x{factor:<4d} {engines_of_kind:7d} "
            f"{cycles:10.0f} {rate:9.1f} {sw_cells:12,d}"
        )
    lines.append("")
    lines.append(
        "SillaX throughput falls ~linearly with read length (cycles ~ N);"
    )
    lines.append(
        "Smith-Waterman work grows quadratically — the §II scaling argument."
    )
    write_result(results_dir, "longread_projection", lines)

    # Shape: 100x longer reads cost ~100x-ish throughput (times the engine
    # reduction from fusing), never the 10,000x a quadratic design pays.
    ratio = khits[0] / khits[-1]
    assert 100 < ratio < 5_000
    assert (SCENARIOS[-1][1] / SCENARIOS[0][1]) ** 2 > 3 * ratio


def test_longread_bench(benchmark):
    def run():
        total = 0.0
        for __, length, __rate in SCENARIOS:
            total += SillaXCycleModel(read_length=length, edit_bound=80).cycles_per_hit
        return total

    assert benchmark(run) > 0
