"""§V/§IX: FM-index (BWT) seeding locality versus segmented position tables.

The paper's seeding accelerator exists because "SMEM computation using BWT
has poor cache locality due to highly irregular memory accesses" (§IX).
This bench quantifies that: both seeders produce identical SMEMs, but the
FM-index touches scattered index addresses (large mean jump per access)
while the table seeder's per-segment working set streams sequentially.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.seeding.fmindex import FmIndexSeeder
from repro.seeding.index import KmerIndex
from repro.seeding.smem import SmemConfig, SmemFinder

K = 8


@pytest.fixture(scope="module")
def segment(reference):
    return reference.sequence[:8_000]


@pytest.fixture(scope="module")
def reads(segment):
    rng = random.Random(71)
    out = []
    for __ in range(15):
        start = rng.randrange(0, len(segment) - 101)
        read = list(segment[start : start + 101])
        for __ in range(rng.randrange(0, 3)):
            read[rng.randrange(101)] = rng.choice("ACGT")
        out.append("".join(read))
    return out


def test_sec9_fmindex_locality(segment, reads, results_dir):
    table = SmemFinder(KmerIndex.build(segment, K), SmemConfig(k=K))
    fm = FmIndexSeeder(segment, K, occ_rate=32, sa_rate=4)

    mismatches = 0
    for read in reads:
        a = [(s.read_offset, s.length, s.hits) for s in table.find_seeds(read)]
        b = [(s.read_offset, s.length, s.hits) for s in fm.find_seeds(read)]
        if a != b:
            mismatches += 1
    trace = fm.trace

    lines = [
        f"segment {len(segment)} bp, {len(reads)} reads, k={K}",
        f"seed agreement (table vs FM-index): {len(reads) - mismatches}/{len(reads)}",
        "",
        "FM-index access pattern:",
        f"  index accesses: {trace.accesses}",
        f"  distinct cache lines: {trace.distinct_lines}",
        f"  mean jump between accesses: {trace.mean_jump:,.0f} bytes",
        "",
        "position-table seeding touches one contiguous per-segment table",
        "(streamed once per segment into SRAM, then 100% hit rate, §VII);",
        "the FM-index walk above is the locality gap §IX describes.",
    ]
    write_result(results_dir, "sec9_fmindex_locality", lines)

    assert mismatches == 0
    assert trace.mean_jump > 64  # scattered far beyond single cache lines


def test_sec9_fmindex_bench(benchmark, segment, reads):
    fm = FmIndexSeeder(segment, K)

    def run():
        return fm.find_seeds(reads[0])

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_sec9_table_bench(benchmark, segment, reads):
    finder = SmemFinder(KmerIndex.build(segment, K), SmemConfig(k=K))

    def run():
        return finder.find_seeds(reads[0])

    assert benchmark.pedantic(run, rounds=1, iterations=1)
