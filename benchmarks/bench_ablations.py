"""Ablations for the design choices DESIGN.md calls out.

* CAM size sweep — why 512 entries (the paper sized it from the k-mer hit
  distribution; we sweep and report lookup cost + overflow rates).
* Segment count sweep — table-locality versus per-segment streaming cost.
* Exact-match fast path on/off — the §V item-4 optimization.
* Composable tiles — reconfiguration overhead versus a monolithic engine.
* Collapsed vs 3-D Silla — the §III-C state-count saving.
"""

import random

import pytest

from benchmarks.conftest import EDIT_BOUND, write_result
from repro.core.silla import silla_state_count
from repro.core.three_d_silla import three_d_state_count
from repro.seeding.accelerator import SeedingAccelerator
from repro.seeding.index import KmerIndex
from repro.seeding.smem import SmemConfig
from repro.sillax.composable import ComposableArray
from repro.sillax.traceback_machine import TracebackMachine


def test_ablation_cam_size(reference, workload, results_dir):
    reads = [s.sequence for s in workload[:20]]
    lines = ["CAM size sweep (lookups/read, overflow fallbacks):"]
    previous = None
    for cam_size in (16, 64, 256, 512):
        accel = SeedingAccelerator(
            reference, SmemConfig(k=12, cam_size=cam_size), segment_count=2
        )
        accel.seed_reads(reads)
        lines.append(
            f"  {cam_size:4d} {accel.stats.lookups_per_read:10.1f} "
            f"{accel.stats.intersections.overflow_fallbacks:6d}"
        )
        if previous is not None:
            # Larger CAMs can only reduce overflow fallbacks.
            assert accel.stats.intersections.overflow_fallbacks <= previous
        previous = accel.stats.intersections.overflow_fallbacks
    write_result(results_dir, "ablation_cam_size", lines)


def test_ablation_segment_count(reference, workload, results_dir):
    reads = [s.sequence for s in workload[:12]]
    lines = [
        "segment count sweep "
        "(position-table bytes/segment, table bytes streamed):"
    ]
    position_bytes = []
    for segments in (1, 2, 4, 8):
        accel = SeedingAccelerator(reference, SmemConfig(k=12), segment_count=segments)
        accel.seed_reads(reads)
        per_segment = max(
            tables.index.position_table_bytes() for tables in accel.tables
        )
        position_bytes.append(per_segment)
        lines.append(
            f"  {segments:2d} {per_segment:12d} "
            f"{accel.stats.table_bytes_streamed:14d}"
        )
    write_result(results_dir, "ablation_segment_count", lines)
    # More segments -> smaller per-segment position tables (what lets GenAx
    # hold a segment's tables in on-chip SRAM, §V); the direct-mapped index
    # table is constant per segment by construction.
    assert position_bytes[-1] < position_bytes[0]


def test_ablation_exact_match_fast_path(reference, workload, results_dir):
    reads = [s.sequence for s in workload]

    def run(fast_path):
        accel = SeedingAccelerator(
            reference,
            SmemConfig(k=12, exact_match_fast_path=fast_path),
            segment_count=2,
        )
        accel.seed_reads(reads)
        return accel.stats

    with_fp = run(True)
    without_fp = run(False)
    lines = [
        "exact-match fast path ablation:",
        f"  lookups/read with fast path:    {with_fp.lookups_per_read:10.1f}",
        f"  lookups/read without fast path: {without_fp.lookups_per_read:10.1f}",
        f"  exact reads detected: {with_fp.finder.exact_match_reads}",
    ]
    write_result(results_dir, "ablation_exact_fast_path", lines)
    assert with_fp.finder.exact_match_reads >= 0


def test_ablation_composable_tiles(results_dir):
    rng = random.Random(55)
    reference = "".join(rng.choice("ACGT") for _ in range(80))
    query = list(reference[:64])
    for __ in range(6):
        query[rng.randrange(64)] = rng.choice("ACGT")
    query = "".join(query)

    array = ComposableArray(base_k=4, tiles=4)
    fused = array.align(reference, query, k_needed=8)
    monolithic = TracebackMachine(8).align(reference, query)
    lines = [
        "composable tiles (2x2 fusion of K=4 tiles vs monolithic K=8):",
        f"  fused score {fused.score}, monolithic score {monolithic.score}",
        f"  reconfigurations: {array.reconfigurations}",
        f"  engines while fused: {array.config.engine_ks}",
    ]
    write_result(results_dir, "ablation_composable", lines)
    assert fused.score == monolithic.score


def test_ablation_collapsed_vs_3d_states(results_dir):
    lines = ["state counts: K  collapsed  3-D  saving"]
    for k in (8, 16, 32, 40, 64):
        collapsed = silla_state_count(k)
        cubic = three_d_state_count(k)
        lines.append(f"  {k:3d} {collapsed:9d} {cubic:9d} {cubic / collapsed:6.1f}x")
        assert collapsed < cubic
    write_result(results_dir, "ablation_collapsed_states", lines)


def test_ablation_cam_sizing_analysis(reference, results_dir):
    """§V: 'most k-mers have less than 512 hits when k = 12' — reproduced."""
    from repro.seeding.analysis import analyze_index, pathological_kmers, recommend_cam_size

    index = KmerIndex.build(reference.sequence, 12)
    dist = analyze_index(index)
    worst = pathological_kmers(index, top=3)
    lines = [
        f"k = 12 over {len(reference.sequence):,} bp:",
        f"  distinct k-mers: {dist.distinct_kmers:,}",
        f"  fraction with <= 512 hits (paper: 'most'): {dist.cam_adequacy(512):.6f}",
        f"  99th percentile hit count: {dist.quantile(0.99)}",
        f"  recommended CAM (99% coverage, power of two): {recommend_cam_size(dist)}",
        "  worst k-mers: " + ", ".join(f"{kmer}({count})" for kmer, count in worst),
    ]
    write_result(results_dir, "ablation_cam_sizing", lines)
    assert dist.cam_adequacy(512) > 0.99


def test_ablation_rerun_vs_error_rate(reference, results_dir):
    """Fig. 13 extension: traceback re-execution rate versus read error rate."""
    import random

    from repro.sillax.lane import SillaXLane

    rng = random.Random(333)

    def corrupt(read, errors):
        out = list(read)
        for __ in range(errors):
            p = rng.randrange(max(1, len(out)))
            roll = rng.random()
            if roll < 0.6 and out:
                out[p] = rng.choice("ACGT")
            elif roll < 0.8:
                out.insert(p, rng.choice("ACGT"))
            elif out:
                del out[p]
        return "".join(out)[:101]

    lines = ["errors/read (mixed sub/indel) -> rerun fraction (40 extensions each):"]
    fractions = []
    for errors in (0, 2, 4, 8):
        lane = SillaXLane(k=EDIT_BOUND)
        for __ in range(40):
            start = rng.randrange(0, len(reference.sequence) - 130)
            window = reference.sequence[start : start + 113]
            lane.align_pair(window, corrupt(window[:101], errors))
        fractions.append(lane.stats.rerun_fraction)
        lines.append(f"  {errors:2d} -> {lane.stats.rerun_fraction:.3f}")
    write_result(results_dir, "ablation_rerun_vs_error_rate", lines)
    # Error-free reads never break pointer trails; indel-bearing reads can
    # (competing paths re-enter states and overwrite records).
    assert fractions[0] == 0.0
    assert max(fractions) > 0.0


def test_ablation_bench_index_build(benchmark, reference):
    def build():
        return KmerIndex.build(reference.sequence[:20_000], 12).total_positions

    assert benchmark(build) > 0
