"""Fig. 15: end-to-end GenAx throughput (a) and power (b).

The GenAx pipeline simulator runs the workload to *measure* the per-read
statistics (exact-match fraction, surviving hits per inexact read); those
measurements parameterize the calibrated throughput model, which is then
compared against the paper's 4,058 Kreads/s headline and the BWA-MEM /
CUSHAW2 baselines.
"""

import pytest

from benchmarks.conftest import EDIT_BOUND, write_result
from repro.model import constants
from repro.model.power import GenAxPowerModel
from repro.model.throughput import (
    GenAxThroughputModel,
    GenAxWorkload,
    SillaXCycleModel,
)
from repro.pipeline.genax import GenAxAligner, GenAxConfig


def _run_pipeline(reference, workload):
    aligner = GenAxAligner(
        reference, GenAxConfig(edit_bound=EDIT_BOUND, segment_count=4)
    )
    mapped = [aligner.align_read(s.name, s.sequence) for s in workload]
    return aligner, mapped


def test_fig15a_throughput(reference, workload, results_dir):
    aligner, mapped = _run_pipeline(reference, workload)
    stats = aligner.stats
    lane = aligner.lane_stats

    exact_fraction = stats.reads_exact / stats.reads_total
    inexact = max(1, stats.reads_total - stats.reads_exact)
    hits_per_inexact = lane.extensions / inexact

    seeding = aligner.seeding_stats
    seeding_lookups = (
        seeding.cycles_per_read / 2.0 if seeding.reads_processed else 60.0
    )
    model = GenAxThroughputModel(
        workload=GenAxWorkload(
            exact_fraction=exact_fraction,
            hits_per_nonexact_read=hits_per_inexact,
            seeding_lookups_per_read=seeding_lookups,
        ),
        cycle_model=SillaXCycleModel(
            read_length=101,
            edit_bound=constants.EDIT_DISTANCE_BOUND,
            rerun_fraction=lane.rerun_fraction,
        ),
    )
    series = model.figure15a_kreads_s()
    power = GenAxPowerModel().figure15b_watts()

    lines = [
        f"measured exact-match fraction: {exact_fraction:.2f}"
        f" (paper dataset: {1 - constants.NON_EXACT_READS / constants.TOTAL_READS:.2f})",
        f"measured hits/inexact read: {hits_per_inexact:.1f}",
        f"mapped reads: {stats.reads_mapped}/{stats.reads_total}",
        "",
        "Fig. 15a (KReads/s)      model      paper",
    ]
    paper_a = {
        "GenAx": constants.GENAX_THROUGHPUT_KREADS_S,
        "BWA-MEM (CPU)": constants.BWA_MEM_THROUGHPUT_KREADS_S,
        "CUSHAW2 (GPU)": constants.CUSHAW2_THROUGHPUT_KREADS_S,
    }
    for name in series:
        lines.append(f"  {name:16s} {series[name]:10.1f} {paper_a[name]:10.1f}")
    speedup = series["GenAx"] / series["BWA-MEM (CPU)"]
    lines.append(f"speedup vs BWA-MEM (paper 31.7x): {speedup:.1f}x")
    default_model = GenAxThroughputModel()
    lines.append(
        "GenAx at the paper's workload statistics "
        f"(55% exact, 10 hits/inexact read): {default_model.kreads_per_second():.0f}"
        " KReads/s"
    )
    from repro.model.schedule import GenAxSchedule

    schedule = GenAxSchedule(
        cycles_per_hit=default_model.cycle_model.cycles_per_hit
    )
    timeline = schedule.resolve()
    lines.append(
        f"segment-pipeline schedule model: {schedule.kreads_per_second():.0f} "
        f"KReads/s, bottleneck = {timeline.bottleneck} "
        f"({timeline.utilization(timeline.bottleneck):.0%} busy)"
    )
    lines.append("")
    lines.append("Fig. 15b (W)")
    for name, watts in power.items():
        lines.append(f"  {name:16s} {watts:10.1f}")
    lines.append(
        f"power reduction vs CPU (paper 12x): "
        f"{GenAxPowerModel().reduction_vs_cpu():.1f}x"
    )
    write_result(results_dir, "fig15_genax_throughput_power", lines)

    # Shape: who wins and by roughly what factor.
    assert series["GenAx"] > series["BWA-MEM (CPU)"] > series["CUSHAW2 (GPU)"]
    assert 10 < speedup < 100
    assert power["GenAx"] < power["BWA-MEM (CPU)"] / 8


def test_fig15_pipeline_bench(benchmark, reference, workload):
    subset = workload[:6]

    def run():
        aligner = GenAxAligner(
            reference, GenAxConfig(edit_bound=EDIT_BOUND, segment_count=2)
        )
        return [aligner.align_read(s.name, s.sequence) for s in subset]

    mapped = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(mapped) == len(subset)
