"""Shared benchmark fixtures: a mid-size synthetic workload.

Every figure/table bench runs against the same scaled-down workload (a
50 kbp genome, 101 bp reads at ~2% error) so numbers are comparable across
benches.  Results are also written to ``benchmarks/results/paper/<id>.txt``
so a ``--benchmark-only`` run leaves the regenerated figure data on disk
(machine-read benchmark JSON lives separately under ``results/bench/``).
"""

import random
from pathlib import Path

import pytest

from repro.genome.reads import ErrorProfile, ReadSimulator
from repro.genome.reference import make_reference
from repro.genome.variants import simulate_variants

RESULTS_DIR = Path(__file__).parent / "results" / "paper"

GENOME_BP = 50_000
READ_LENGTH = 101
READ_COUNT = 60
EDIT_BOUND = 12  # scaled from the paper's K = 40 to fit Python simulation


@pytest.fixture(scope="session")
def reference():
    return make_reference(GENOME_BP, seed=101)


@pytest.fixture(scope="session")
def workload(reference):
    """Simulated reads with ground truth (variants + sequencing errors)."""
    rng = random.Random(202)
    variants = simulate_variants(reference.sequence, rng)
    simulator = ReadSimulator(
        reference,
        variants,
        read_length=READ_LENGTH,
        seed=303,
        error_profile=ErrorProfile(rate_start=0.01, rate_end=0.03),
    )
    return simulator.simulate(READ_COUNT)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, lines) -> None:
    """Persist one experiment's regenerated rows/series."""
    path = results_dir / f"{name}.txt"
    path.write_text("\n".join(str(line) for line in lines) + "\n")
